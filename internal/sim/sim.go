package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
)

// Time is a point on the simulated clock, in seconds since simulation start.
type Time = float64

// Duration is a span of simulated time, in seconds.
type Duration = float64

// Convenient duration units.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// FormatTime renders a simulated time compactly for logs and charts.
func FormatTime(t Time) string {
	switch {
	case t == 0:
		return "0s"
	case math.Abs(t) < 1e-6:
		return fmt.Sprintf("%.1fns", t*1e9)
	case math.Abs(t) < 1e-3:
		return fmt.Sprintf("%.2fus", t*1e6)
	case math.Abs(t) < 1:
		return fmt.Sprintf("%.3fms", t*1e3)
	default:
		return fmt.Sprintf("%.4fs", t)
	}
}

type event struct {
	at  Time
	seq int64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a discrete-event simulation environment. The zero value is not
// usable; construct with NewEnv.
type Env struct {
	now    Time
	queue  eventHeap
	seq    int64
	nfired int64
	free   []*event // recycled event nodes: scheduling is allocation-free at steady state
}

// NewEnv returns an environment with the clock at zero and an empty queue.
func NewEnv() *Env {
	return &Env{}
}

// Now returns the current simulated time.
func (e *Env) Now() Time { return e.now }

// EventsFired reports how many events have executed so far (useful for
// bounding runaway models in tests).
func (e *Env) EventsFired() int64 { return e.nfired }

// Schedule runs fn at absolute time at. Scheduling in the past panics: that
// is always a model bug, and silently clamping would hide it.
func (e *Env) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %s before now %s", FormatTime(at), FormatTime(e.now)))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	heap.Push(&e.queue, ev)
}

// After runs fn d seconds from now. Negative d panics.
func (e *Env) After(d Duration, fn func()) {
	e.Schedule(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was available.
func (e *Env) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.nfired++
	fn := ev.fn
	ev.fn = nil // release the closure; recycle the node before running it
	e.free = append(e.free, ev)
	fn()
	return true
}

// Run drains the event queue. It returns the final clock value.
func (e *Env) Run() Time {
	for e.Step() {
	}
	return e.now
}

// ctxCheckInterval is how many events RunContext executes between
// cancellation checks — large enough that the check is free relative to
// event dispatch, small enough that cancellation lands promptly.
const ctxCheckInterval = 1024

// RunContext drains the event queue like Run, but polls ctx every
// ctxCheckInterval events and stops with ctx.Err() on cancellation or
// deadline. An abandoned environment may leave parked processes behind;
// callers must discard it rather than resume it.
func (e *Env) RunContext(ctx context.Context) (Time, error) {
	if ctx.Done() == nil { // not cancellable: identical to Run, zero overhead
		return e.Run(), nil
	}
	for {
		for i := 0; i < ctxCheckInterval; i++ {
			if !e.Step() {
				return e.now, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return e.now, err
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Env) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Env) Pending() int { return len(e.queue) }
