package sim

import (
	"context"
	"errors"
	"testing"
)

func TestEnvStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("new env clock = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new env pending = %d, want 0", e.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final clock = %v, want 3", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: position %d has %d", i, v)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestAfterAccumulates(t *testing.T) {
	e := NewEnv()
	var hits []Time
	e.After(1, func() {
		hits = append(hits, e.Now())
		e.After(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v, want [1 3]", hits)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEnv()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 10 {
		t.Fatalf("after Run: fired=%d clock=%v", fired, e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEnv()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventsFiredCount(t *testing.T) {
	e := NewEnv()
	for i := 0; i < 7; i++ {
		e.After(Duration(i), func() {})
	}
	e.Run()
	if e.EventsFired() != 7 {
		t.Fatalf("EventsFired = %d, want 7", e.EventsFired())
	}
}

func TestFormatTime(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{5e-9, "5.0ns"},
		{2.5e-6, "2.50us"},
		{1.5e-3, "1.500ms"},
		{2.25, "2.2500s"},
	}
	for _, c := range cases {
		if got := FormatTime(c.t); got != c.want {
			t.Errorf("FormatTime(%v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestRunContextCompletesLikeRun(t *testing.T) {
	// A non-cancelled context must not change the simulation: same final
	// time as Run, all events fired.
	build := func() *Env {
		env := NewEnv()
		for i := 1; i <= 5000; i++ {
			env.Schedule(Time(i)*Microsecond, func() {})
		}
		return env
	}
	plain := build()
	want := plain.Run()
	env := build()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := env.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("RunContext ended at %v, Run at %v", got, want)
	}
}

func TestRunContextStopsWhenCancelled(t *testing.T) {
	env := NewEnv()
	const n = 100_000
	fired := 0
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 1; i <= n; i++ {
		env.Schedule(Time(i)*Microsecond, func() {
			fired++
			if fired == 10 {
				cancel()
			}
		})
	}
	if _, err := env.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fired == n {
		t.Fatal("cancellation did not stop the event loop early")
	}
}
