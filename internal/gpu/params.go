// Package gpu models a CUDA-class accelerator well enough to time the
// paper's workloads: an HBM bandwidth/occupancy cost model for kernels,
// kernel-launch and stream-synchronisation overheads, in-order streams, and
// a device memory allocator. The model executes no math itself — functional
// work happens in internal/tensor — it only answers "how long does this
// kernel take on this device", which is the entire game for reproducing the
// paper's timing results.
package gpu

import "pgasemb/internal/sim"

// Params describes one GPU model. Defaults (V100Params) are calibrated to a
// 32 GB Tesla V100 as found in the paper's DGX testbed; see DESIGN.md §5 and
// EXPERIMENTS.md for the calibration story.
type Params struct {
	// Name labels the device model in logs.
	Name string

	// MemoryCapacity is the device memory size in bytes (V100: 32 GB).
	MemoryCapacity int64

	// HBMBandwidth is peak device-memory bandwidth in bytes/second.
	HBMBandwidth float64

	// GatherEfficiency is the fraction of peak bandwidth achieved by
	// embedding-row gathers: random 256 B reads across a multi-GB working
	// set (DRAM row misses, no L2 reuse).
	GatherEfficiency float64

	// StreamEfficiency is the fraction of peak bandwidth achieved by
	// long contiguous reads/writes (output stores, memcpy-like kernels).
	StreamEfficiency float64

	// HotRowEfficiency is the fraction of peak bandwidth achieved by
	// gathers from the serving-side hot-row cache. The cache holds the
	// most-frequent rows of a skewed stream in a working set small enough
	// to live mostly in L2 (the HugeCTR HPS argument for per-GPU embedding
	// caches), so cached reads run far closer to streaming than the
	// DRAM-row-miss gathers of the full tables. 0 means "no distinct hot
	// path": cached reads are priced at GatherEfficiency.
	HotRowEfficiency float64

	// UnpackEfficiency is the fraction of peak bandwidth achieved by the
	// post-collective unpack/rearrangement step. This is deliberately far
	// below StreamEfficiency: in the PyTorch baseline the "unpack" is a
	// chain of framework-level tensor ops (split/permute/cat/copy), each
	// with its own launch and intermediate traffic, not one tight kernel.
	// The paper's measured sync+unpack component implies an effective
	// throughput in the tens of GB/s, which this parameter reproduces.
	UnpackEfficiency float64

	// PeakFLOPS is peak fp32 throughput in FLOP/s, used by the MLP model.
	PeakFLOPS float64

	// MLPEfficiency is the fraction of PeakFLOPS achieved by the dense
	// layers (GEMM efficiency at DLRM-typical sizes).
	MLPEfficiency float64

	// KernelLaunch is the host-side cost of launching one kernel.
	KernelLaunch sim.Duration

	// StreamSync is the host-side cost of synchronising a stream (the
	// cudaStreamSynchronize the paper identifies as overhead).
	StreamSync sim.Duration

	// SaturationItems is the number of parallel work items (output
	// vectors, i.e. batch × local tables) needed to reach full memory
	// throughput. Below it, achieved throughput scales linearly with the
	// available parallelism — the latency-limited regime — so splitting a
	// fixed problem across more GPUs stops helping once the per-GPU work
	// drops under this point: runtime plateaus at a constant, which is
	// exactly the paper's strong-scaling observation ("computation time
	// decreases with 2 GPUs and stays roughly the same beyond", with ncu
	// showing <60% throughput).
	SaturationItems float64

	// ItemOverhead is the fixed kernel cost per output vector (bag setup,
	// offset reads, pooling-loop bookkeeping), independent of the bag
	// size. It is why the strong-scaling workload (short bags, pooling
	// ≤32) moves fewer bytes per unit time than the weak-scaling one
	// (pooling ≤128).
	ItemOverhead sim.Duration

	// RemoteIssueOverhead is the extra kernel time per one-sided remote
	// store issued from inside a kernel (register-to-NVLink path, amortised
	// per 256 B message at warp granularity).
	RemoteIssueOverhead sim.Duration

	// RemotePeerChunkOverhead is the extra fused-kernel time per compute
	// chunk per remote peer: interleaving one-sided stores across several
	// NVLink destinations shortens per-peer write bursts and costs some
	// write-combining efficiency. This term gives the PGAS backend the mild
	// runtime growth with GPU count the paper observes (its "small messages
	// are not bandwidth-efficient" overhead that stays hidden until it
	// isn't).
	RemotePeerChunkOverhead sim.Duration

	// UnpackFixed is the per-batch framework overhead of the baseline's
	// post-collective rearrangement (op dispatch, allocator traffic).
	UnpackFixed sim.Duration

	// UnpackPerSegment is the additional per-source-rank overhead of the
	// rearrangement: each peer's received segment is spliced by its own
	// chain of tensor ops, so the cost grows with GPU count even when the
	// received byte count shrinks (the paper's strong-scaling sync+unpack
	// trend).
	UnpackPerSegment sim.Duration

	// PCIeBandwidth is the host-to-device copy rate for staging inputs
	// (bytes/second).
	PCIeBandwidth float64

	// CPUPartitionRate is the host-side throughput of partitioning the
	// sparse inputs for model parallelism (bytes of index data per
	// second). The paper notes this stage is cheap for table-wise
	// sharding but "will become more significant" for row-wise schemes —
	// and proposes fusing it into the kernel.
	CPUPartitionRate float64
}

// V100Params returns parameters calibrated to a 32 GB Tesla V100 in a DGX
// chassis — the paper's testbed.
func V100Params() Params {
	return Params{
		Name:                    "Tesla-V100-SXM2-32GB",
		MemoryCapacity:          32 << 30,
		HBMBandwidth:            900e9,
		GatherEfficiency:        0.49,
		StreamEfficiency:        0.85,
		HotRowEfficiency:        0.85,
		UnpackEfficiency:        0.0256,
		PeakFLOPS:               14e12,
		MLPEfficiency:           0.55,
		KernelLaunch:            5 * sim.Microsecond,
		StreamSync:              12 * sim.Microsecond,
		SaturationItems:         0.94e6,
		ItemOverhead:            26.5 * sim.Nanosecond,
		RemoteIssueOverhead:     1.6 * sim.Nanosecond,
		RemotePeerChunkOverhead: 25 * sim.Microsecond,
		UnpackFixed:             2 * sim.Millisecond,
		UnpackPerSegment:        13 * sim.Millisecond,
		PCIeBandwidth:           12e9,
		CPUPartitionRate:        50e9,
	}
}

// A100Params returns parameters for a 40 GB A100-class device: ~1.7x the
// V100's memory bandwidth and compute, same overhead structure. Used by the
// cross-hardware sensitivity experiments (does the PGAS advantage survive a
// faster part?).
func A100Params() Params {
	p := V100Params()
	p.Name = "A100-SXM4-40GB"
	p.MemoryCapacity = 40 << 30
	p.HBMBandwidth = 1555e9
	p.PeakFLOPS = 19.5e12
	// More SMs need proportionally more parallelism to saturate.
	p.SaturationItems = 1.5e6
	p.ItemOverhead = 18 * sim.Nanosecond
	return p
}

// Validate reports whether the parameter set is physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.MemoryCapacity <= 0:
		return paramErr("MemoryCapacity")
	case p.HBMBandwidth <= 0:
		return paramErr("HBMBandwidth")
	case p.GatherEfficiency <= 0 || p.GatherEfficiency > 1:
		return paramErr("GatherEfficiency")
	case p.StreamEfficiency <= 0 || p.StreamEfficiency > 1:
		return paramErr("StreamEfficiency")
	case p.HotRowEfficiency < 0 || p.HotRowEfficiency > 1:
		return paramErr("HotRowEfficiency")
	case p.UnpackEfficiency <= 0 || p.UnpackEfficiency > 1:
		return paramErr("UnpackEfficiency")
	case p.PeakFLOPS <= 0:
		return paramErr("PeakFLOPS")
	case p.MLPEfficiency <= 0 || p.MLPEfficiency > 1:
		return paramErr("MLPEfficiency")
	case p.KernelLaunch < 0:
		return paramErr("KernelLaunch")
	case p.StreamSync < 0:
		return paramErr("StreamSync")
	case p.SaturationItems < 0:
		return paramErr("SaturationItems")
	case p.ItemOverhead < 0:
		return paramErr("ItemOverhead")
	case p.RemoteIssueOverhead < 0:
		return paramErr("RemoteIssueOverhead")
	case p.RemotePeerChunkOverhead < 0:
		return paramErr("RemotePeerChunkOverhead")
	case p.UnpackFixed < 0:
		return paramErr("UnpackFixed")
	case p.UnpackPerSegment < 0:
		return paramErr("UnpackPerSegment")
	case p.PCIeBandwidth <= 0:
		return paramErr("PCIeBandwidth")
	case p.CPUPartitionRate <= 0:
		return paramErr("CPUPartitionRate")
	}
	return nil
}

type paramError struct{ field string }

func paramErr(field string) error { return paramError{field} }

func (e paramError) Error() string { return "gpu: invalid parameter " + e.field }
