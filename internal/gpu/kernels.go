package gpu

import (
	"fmt"

	"pgasemb/internal/sim"
)

// occupancyUtil returns the fraction of asymptotic throughput a kernel with
// the given number of independent work items achieves: linear in the
// available parallelism up to SaturationItems, 1 beyond. The two regimes
// match the paper's observations: the weak-scaling per-GPU workload (≈1M
// output vectors) sits at saturation, while the strong-scaling per-GPU
// workload (≤0.8M) falls below it — there, runtime is the constant
// (work/parallelism) × (saturation/throughput), so adding GPUs stops
// helping: the "latency-limited beyond 2 GPUs" plateau.
func (d *Device) occupancyUtil(workItems int) float64 {
	if workItems <= 0 {
		return 0
	}
	if d.params.SaturationItems <= 0 {
		return 1
	}
	u := float64(workItems) / d.params.SaturationItems
	if u > 1 {
		return 1
	}
	return u
}

// GatherKernelCost models an embedding lookup+pooling kernel: readBytes of
// random 256 B-granularity gathers plus writeBytes of streaming output
// stores plus a fixed per-item cost, executed by workItems independent
// output vectors at the occupancy-derived utilisation.
func (d *Device) GatherKernelCost(readBytes, writeBytes float64, workItems int) sim.Duration {
	if readBytes < 0 || writeBytes < 0 {
		panic(fmt.Sprintf("gpu%d: negative kernel traffic (%g, %g)", d.id, readBytes, writeBytes))
	}
	util := d.occupancyUtil(workItems)
	if util == 0 {
		return 0
	}
	read := readBytes / (d.params.HBMBandwidth * d.params.GatherEfficiency)
	write := writeBytes / (d.params.HBMBandwidth * d.params.StreamEfficiency)
	items := sim.Duration(workItems) * d.params.ItemOverhead
	return (read + write + items) / util * sim.Duration(d.slow)
}

// GatherKernelChunkCost prices one progress chunk of a larger gather
// kernel: the chunk moves its own traffic and pays per-item overhead for
// its own chunkItems, but runs at the utilisation set by the WHOLE kernel's
// parallelism (kernelItems) — chunking is a bookkeeping quantum of the
// timing model, not a change in occupancy. Summing chunk costs over a
// kernel reproduces GatherKernelCost of the totals exactly.
func (d *Device) GatherKernelChunkCost(readBytes, writeBytes float64, chunkItems, kernelItems int) sim.Duration {
	if readBytes < 0 || writeBytes < 0 {
		panic(fmt.Sprintf("gpu%d: negative chunk traffic (%g, %g)", d.id, readBytes, writeBytes))
	}
	if chunkItems < 0 || chunkItems > kernelItems {
		panic(fmt.Sprintf("gpu%d: chunk items %d outside kernel items %d", d.id, chunkItems, kernelItems))
	}
	util := d.occupancyUtil(kernelItems)
	if util == 0 {
		return 0
	}
	read := readBytes / (d.params.HBMBandwidth * d.params.GatherEfficiency)
	write := writeBytes / (d.params.HBMBandwidth * d.params.StreamEfficiency)
	items := sim.Duration(chunkItems) * d.params.ItemOverhead
	return (read + write + items) / util * sim.Duration(d.slow)
}

// HotReadEquivalent converts bytes gathered from the hot-row cache into the
// number of GatherEfficiency-priced bytes that cost the same time, so a
// kernel serving a mix of cold-table and cached rows can be priced with one
// GatherKernelCost call: pass tableBytes + HotReadEquivalent(cacheBytes) as
// readBytes. With HotRowEfficiency unset the conversion is the identity.
func (d *Device) HotReadEquivalent(bytes float64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("gpu%d: negative hot-read bytes %g", d.id, bytes))
	}
	eff := d.params.HotRowEfficiency
	if eff <= 0 {
		return bytes
	}
	return bytes * d.params.GatherEfficiency / eff
}

// ExpandKernelCost prices the inverse-expansion kernel of the dedup path:
// refs pooled-index references are resolved against a small staged buffer of
// unique rows (received over the wire or staged by the gather kernel) and
// pooled into outItems output vectors of vecBytes each. Unlike the gather
// kernel there is no index hashing, bag walking or remote issuing per item —
// expansion streams a precomputed int32 position map and accumulates
// vectors, so it is a pure bandwidth-bound kernel (like copy and unpack):
// the staged working set — one batch's unique rows — is L2-resident, so
// re-reads are priced at the hot-row efficiency (falling back to the gather
// efficiency when no hot path is modeled); outputs and the position map
// stream at the streaming efficiency.
func (d *Device) ExpandKernelCost(refs int64, outItems, vecBytes int) sim.Duration {
	if refs < 0 || outItems < 0 {
		panic(fmt.Sprintf("gpu%d: negative expand inputs (%d, %d)", d.id, refs, outItems))
	}
	readEff := d.params.HotRowEfficiency
	if readEff <= 0 {
		readEff = d.params.GatherEfficiency
	}
	read := float64(refs) * float64(vecBytes) / (d.params.HBMBandwidth * readEff)
	write := (float64(outItems)*float64(vecBytes) + float64(refs)*4) /
		(d.params.HBMBandwidth * d.params.StreamEfficiency)
	return (sim.Duration(read) + sim.Duration(write)) * sim.Duration(d.slow)
}

// GatherDedupWins reports whether a gather over refs pooled-index references
// that hit only uniq distinct rows is cheaper when each distinct row is read
// from the table once, staged in a (L2-resident) scratch buffer, and the
// remaining refs-uniq references re-read it hot — versus gathering every
// reference at random-access efficiency. The vector size cancels, so the
// decision depends only on the duplication factor and the efficiency
// parameters; without a hot-row efficiency the staged path has no advantage
// and the answer is always false.
func (d *Device) GatherDedupWins(uniq, refs int64) bool {
	if uniq < 0 || refs < 0 {
		panic(fmt.Sprintf("gpu%d: negative dedup inputs (%d, %d)", d.id, uniq, refs))
	}
	he := d.params.HotRowEfficiency
	if he <= 0 || uniq >= refs {
		return false
	}
	ge, se := d.params.GatherEfficiency, d.params.StreamEfficiency
	dense := float64(refs) / ge
	staged := float64(uniq)/ge + float64(uniq)/se + float64(refs-uniq)/he
	return staged < dense
}

// RemoteIssueCost returns the extra kernel time for issuing n one-sided
// remote stores from inside a kernel. This is the PGAS backend's only
// compute-side overhead relative to the local-only kernel.
func (d *Device) RemoteIssueCost(n int) sim.Duration {
	if n < 0 {
		panic(fmt.Sprintf("gpu%d: negative remote store count %d", d.id, n))
	}
	return sim.Duration(n) * d.params.RemoteIssueOverhead * sim.Duration(d.slow)
}

// UnpackKernelCost models the post-collective unpack/rearrangement of
// receivedBytes (from segments peer source ranks) into the layout the next
// layer expects: a fixed framework cost, a per-source-segment op-chain cost,
// and read+write traffic at the (low) unpack efficiency.
func (d *Device) UnpackKernelCost(receivedBytes float64, segments int) sim.Duration {
	if receivedBytes < 0 {
		panic(fmt.Sprintf("gpu%d: negative unpack bytes %g", d.id, receivedBytes))
	}
	if segments < 0 {
		panic(fmt.Sprintf("gpu%d: negative unpack segments %d", d.id, segments))
	}
	moved := 2 * receivedBytes // read staging + write destination
	return (d.params.UnpackFixed +
		sim.Duration(segments)*d.params.UnpackPerSegment +
		moved/(d.params.HBMBandwidth*d.params.UnpackEfficiency)) * sim.Duration(d.slow)
}

// CopyKernelCost models a contiguous device-to-device-memory copy of the
// given size (one read + one write at streaming efficiency).
func (d *Device) CopyKernelCost(bytes float64) sim.Duration {
	if bytes < 0 {
		panic(fmt.Sprintf("gpu%d: negative copy bytes %g", d.id, bytes))
	}
	return 2 * bytes / (d.params.HBMBandwidth * d.params.StreamEfficiency) * sim.Duration(d.slow)
}

// EncodeKernelCost models the owner-side wire-precision encode: rawBytes of
// fp32 rows are read and encBytes of compressed rows written, a streaming
// bandwidth-bound kernel (quantization arithmetic hides under the memory
// traffic, like copy and unpack).
func (d *Device) EncodeKernelCost(rawBytes, encBytes float64) sim.Duration {
	if rawBytes < 0 || encBytes < 0 {
		panic(fmt.Sprintf("gpu%d: negative encode bytes (%g, %g)", d.id, rawBytes, encBytes))
	}
	return (rawBytes + encBytes) / (d.params.HBMBandwidth * d.params.StreamEfficiency) * sim.Duration(d.slow)
}

// DecodeKernelCost models the consumer-side decode: encBytes of compressed
// rows read, rawBytes of fp32 rows written. Symmetric to EncodeKernelCost.
func (d *Device) DecodeKernelCost(encBytes, rawBytes float64) sim.Duration {
	if encBytes < 0 || rawBytes < 0 {
		panic(fmt.Sprintf("gpu%d: negative decode bytes (%g, %g)", d.id, encBytes, rawBytes))
	}
	return (encBytes + rawBytes) / (d.params.HBMBandwidth * d.params.StreamEfficiency) * sim.Duration(d.slow)
}

// MLPKernelCost models a dense layer batch: flops of fp32 work, plus the
// activation/weight traffic if it dominates (roofline max of the two).
func (d *Device) MLPKernelCost(flops, bytes float64) sim.Duration {
	if flops < 0 || bytes < 0 {
		panic(fmt.Sprintf("gpu%d: negative MLP cost inputs (%g, %g)", d.id, flops, bytes))
	}
	compute := flops / (d.params.PeakFLOPS * d.params.MLPEfficiency)
	memory := bytes / (d.params.HBMBandwidth * d.params.StreamEfficiency)
	if memory > compute {
		return memory * sim.Duration(d.slow)
	}
	return compute * sim.Duration(d.slow)
}
