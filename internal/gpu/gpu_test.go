package gpu

import (
	"strings"
	"testing"
	"testing/quick"

	"pgasemb/internal/sim"
)

func approxEq(a, b sim.Time) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func testDevice() (*sim.Env, *Device) {
	env := sim.NewEnv()
	return env, NewDevice(env, 0, V100Params())
}

func TestV100ParamsValid(t *testing.T) {
	if err := V100Params().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsEachField(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"MemoryCapacity", func(p *Params) { p.MemoryCapacity = 0 }},
		{"HBMBandwidth", func(p *Params) { p.HBMBandwidth = -1 }},
		{"GatherEfficiency", func(p *Params) { p.GatherEfficiency = 1.5 }},
		{"StreamEfficiency", func(p *Params) { p.StreamEfficiency = 0 }},
		{"UnpackEfficiency", func(p *Params) { p.UnpackEfficiency = -0.1 }},
		{"PeakFLOPS", func(p *Params) { p.PeakFLOPS = 0 }},
		{"MLPEfficiency", func(p *Params) { p.MLPEfficiency = 2 }},
		{"KernelLaunch", func(p *Params) { p.KernelLaunch = -1 }},
		{"StreamSync", func(p *Params) { p.StreamSync = -1 }},
		{"SaturationItems", func(p *Params) { p.SaturationItems = -1 }},
		{"ItemOverhead", func(p *Params) { p.ItemOverhead = -1 }},
		{"RemoteIssueOverhead", func(p *Params) { p.RemoteIssueOverhead = -1 }},
		{"RemotePeerChunkOverhead", func(p *Params) { p.RemotePeerChunkOverhead = -1 }},
		{"UnpackFixed", func(p *Params) { p.UnpackFixed = -1 }},
		{"UnpackPerSegment", func(p *Params) { p.UnpackPerSegment = -1 }},
	}
	for _, m := range mutations {
		p := V100Params()
		m.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("mutation of %s not rejected", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.name) {
			t.Errorf("error %q does not name field %s", err, m.name)
		}
	}
}

func TestNewDeviceRejectsBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDevice with invalid params did not panic")
		}
	}()
	p := V100Params()
	p.HBMBandwidth = 0
	NewDevice(sim.NewEnv(), 0, p)
}

func TestAllocAccounting(t *testing.T) {
	_, d := testDevice()
	b1, err := d.Alloc("tables", 10<<30)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d.Alloc("outputs", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 11<<30 {
		t.Fatalf("Allocated = %d", d.Allocated())
	}
	names := d.AllocationNames()
	if len(names) != 2 || names[0] != "outputs" || names[1] != "tables" {
		t.Fatalf("names = %v", names)
	}
	b1.Free()
	if d.Allocated() != 1<<30 {
		t.Fatalf("Allocated after free = %d", d.Allocated())
	}
	b2.Free()
	if d.Allocated() != 0 {
		t.Fatalf("Allocated after all frees = %d", d.Allocated())
	}
}

func TestAllocOverCapacityFails(t *testing.T) {
	_, d := testDevice()
	if _, err := d.Alloc("huge", 33<<30); err == nil {
		t.Fatal("allocation beyond 32GB succeeded")
	}
	// Paper's strong-scaling config fits: 96 tables × 1M rows × 64 dims × 4B.
	bytes := int64(96) * 1_000_000 * 64 * 4
	if _, err := d.Alloc("strongscale", bytes); err != nil {
		t.Fatalf("paper's 96-table config should fit in 32GB: %v", err)
	}
}

func TestAllocDuplicateNameFails(t *testing.T) {
	_, d := testDevice()
	d.MustAlloc("x", 1)
	if _, err := d.Alloc("x", 1); err == nil {
		t.Fatal("duplicate allocation name succeeded")
	}
}

func TestAllocNegativeFails(t *testing.T) {
	_, d := testDevice()
	if _, err := d.Alloc("neg", -1); err == nil {
		t.Fatal("negative allocation succeeded")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	_, d := testDevice()
	b := d.MustAlloc("x", 4)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	b.Free()
}

func TestBufferAccessors(t *testing.T) {
	_, d := testDevice()
	b := d.MustAlloc("weights", 128)
	if b.Bytes() != 128 || b.Name() != "weights" {
		t.Fatalf("accessors: %d %q", b.Bytes(), b.Name())
	}
}

func TestStreamSerializesKernels(t *testing.T) {
	env, d := testDevice()
	s := d.NewStream("s0")
	var ends []sim.Time
	env.Go("host", func(p *sim.Proc) {
		_, e1 := s.Launch(p, 10*sim.Millisecond)
		_, e2 := s.Launch(p, 5*sim.Millisecond)
		ends = append(ends, e1, e2)
	})
	env.Run()
	launch := d.Params().KernelLaunch
	wantE1 := launch + 10*sim.Millisecond
	// The second kernel queues behind the first (which outlives its own
	// launch overhead), so it starts at wantE1 and ends 5 ms later.
	wantE2 := launch + 15*sim.Millisecond
	if !approxEq(ends[0], wantE1) {
		t.Fatalf("first kernel end = %v, want %v", ends[0], wantE1)
	}
	if !approxEq(ends[1], wantE2) {
		t.Fatalf("second kernel end = %v, want %v", ends[1], wantE2)
	}
	if s.Launches() != 2 {
		t.Fatalf("Launches = %d", s.Launches())
	}
}

func TestStreamSynchronizeWaitsAndCosts(t *testing.T) {
	env, d := testDevice()
	s := d.NewStream("s0")
	var doneAt sim.Time
	env.Go("host", func(p *sim.Proc) {
		s.Launch(p, 1*sim.Millisecond)
		s.Synchronize(p)
		doneAt = p.Now()
	})
	env.Run()
	want := d.Params().KernelLaunch + 1*sim.Millisecond + d.Params().StreamSync
	if doneAt != want {
		t.Fatalf("sync completed at %v, want %v", doneAt, want)
	}
}

func TestStreamsIndependent(t *testing.T) {
	env, d := testDevice()
	a, b := d.NewStream("a"), d.NewStream("b")
	env.Go("host", func(p *sim.Proc) {
		_, endA := a.Launch(p, 10*sim.Millisecond)
		_, endB := b.Launch(p, 1*sim.Millisecond)
		if endB >= endA {
			t.Errorf("independent streams serialized: endA=%v endB=%v", endA, endB)
		}
	})
	env.Run()
}

func TestNegativeKernelDurationPanics(t *testing.T) {
	env, d := testDevice()
	s := d.NewStream("s")
	panicked := false
	env.Go("host", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		s.Launch(p, -1)
	})
	env.Run()
	if !panicked {
		t.Fatal("negative duration did not panic")
	}
}

func TestOccupancyUtilShape(t *testing.T) {
	_, d := testDevice()
	if d.occupancyUtil(0) != 0 {
		t.Fatal("zero items should have zero utilisation")
	}
	sat := int(d.Params().SaturationItems)
	if got := d.occupancyUtil(sat / 2); got < 0.49 || got > 0.51 {
		t.Fatalf("util at half saturation = %v, want ~0.5", got)
	}
	if d.occupancyUtil(sat) != 1 || d.occupancyUtil(100*sat) != 1 {
		t.Fatal("util should be exactly 1 at and beyond saturation")
	}
	if d.occupancyUtil(10) >= d.occupancyUtil(100) {
		t.Fatal("util should be increasing below saturation")
	}
}

func TestStrongScalingComputePlateau(t *testing.T) {
	// Below saturation, halving both traffic and work items leaves kernel
	// time unchanged — the paper's strong-scaling compute plateau.
	_, d := testDevice()
	sat := int(d.Params().SaturationItems)
	t2 := d.GatherKernelCost(4e9, 0, sat/2)
	t4 := d.GatherKernelCost(2e9, 0, sat/4)
	if ratio := t4 / t2; ratio < 0.999 || ratio > 1.001 {
		t.Fatalf("plateau broken: t2=%v t4=%v", t2, t4)
	}
}

func TestGatherKernelCostScalesWithBytes(t *testing.T) {
	// With the per-item overhead zeroed, cost is linear in bytes at fixed
	// occupancy.
	p := V100Params()
	p.ItemOverhead = 0
	d := NewDevice(sim.NewEnv(), 0, p)
	const items = 1 << 20
	c1 := d.GatherKernelCost(1e9, 0, items)
	c2 := d.GatherKernelCost(2e9, 0, items)
	if c2 <= c1 {
		t.Fatal("cost not increasing in read bytes")
	}
	ratio := c2 / c1
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("cost should be linear in bytes at fixed occupancy: ratio=%v", ratio)
	}
}

func TestGatherKernelLatencyLimited(t *testing.T) {
	// Halving bytes AND work items together (strong scaling) must shrink
	// runtime by less than 2x once the work drops below saturation.
	_, d := testDevice()
	sat := int(d.Params().SaturationItems)
	full := d.GatherKernelCost(16e9, 0, sat)
	half := d.GatherKernelCost(8e9, 0, sat/2)
	if half*2 <= full {
		t.Fatalf("no latency-limiting visible: full=%v half=%v", full, half)
	}
}

func TestChunkCostsSumToKernelCost(t *testing.T) {
	_, d := testDevice()
	const items = 1 << 19 // below saturation: utilisation matters
	total := d.GatherKernelCost(1e9, 2e8, items)
	var sum sim.Duration
	const chunks = 7
	for k := 0; k < chunks; k++ {
		lo := items * k / chunks
		hi := items * (k + 1) / chunks
		frac := float64(hi-lo) / float64(items)
		sum += d.GatherKernelChunkCost(1e9*frac, 2e8*frac, hi-lo, items)
	}
	diff := sum - total
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-12 {
		t.Fatalf("chunk costs sum to %v, kernel cost %v", sum, total)
	}
}

func TestChunkCostValidation(t *testing.T) {
	_, d := testDevice()
	defer func() {
		if recover() == nil {
			t.Error("chunkItems > kernelItems did not panic")
		}
	}()
	d.GatherKernelChunkCost(1, 1, 10, 5)
}

func TestGatherWritesCheaperThanGatherReads(t *testing.T) {
	_, d := testDevice()
	r := d.GatherKernelCost(1e9, 0, 1<<20)
	w := d.GatherKernelCost(0, 1e9, 1<<20)
	if w >= r {
		t.Fatalf("streaming writes (%v) should beat gathered reads (%v)", w, r)
	}
}

func TestRemoteIssueCostLinear(t *testing.T) {
	_, d := testDevice()
	if d.RemoteIssueCost(0) != 0 {
		t.Fatal("zero stores should cost nothing")
	}
	one := d.RemoteIssueCost(1)
	million := d.RemoteIssueCost(1_000_000)
	if million != 1_000_000*one {
		t.Fatalf("issue cost not linear: %v vs %v", million, 1_000_000*one)
	}
}

func TestUnpackSlowerThanCopy(t *testing.T) {
	// The whole point of the unpack parameter: rearrangement through the
	// framework is far slower than a tight copy kernel.
	_, d := testDevice()
	if d.UnpackKernelCost(1e9, 1) <= d.CopyKernelCost(1e9) {
		t.Fatal("unpack should cost more than a plain copy")
	}
}

func TestUnpackGrowsWithSegments(t *testing.T) {
	// Even with FEWER received bytes, more source segments can cost more —
	// the paper's strong-scaling sync+unpack trend.
	_, d := testDevice()
	few := d.UnpackKernelCost(100e6, 1)
	many := d.UnpackKernelCost(75e6, 3)
	if many <= few {
		t.Fatalf("segment overhead too weak: 3 segs/75MB = %v <= 1 seg/100MB = %v", many, few)
	}
}

func TestMLPKernelRoofline(t *testing.T) {
	_, d := testDevice()
	// Compute-bound: many flops, few bytes.
	cb := d.MLPKernelCost(1e12, 1e3)
	if want := 1e12 / (d.Params().PeakFLOPS * d.Params().MLPEfficiency); cb != want {
		t.Fatalf("compute-bound cost = %v, want %v", cb, want)
	}
	// Memory-bound: few flops, many bytes.
	mb := d.MLPKernelCost(1e3, 1e9)
	if want := 1e9 / (d.Params().HBMBandwidth * d.Params().StreamEfficiency); mb != want {
		t.Fatalf("memory-bound cost = %v, want %v", mb, want)
	}
}

func TestKernelCostsNonNegativeProperty(t *testing.T) {
	_, d := testDevice()
	f := func(rb, wb uint32, items uint16) bool {
		c := d.GatherKernelCost(float64(rb), float64(wb), int(items))
		return c >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostPanicsOnNegativeInputs(t *testing.T) {
	_, d := testDevice()
	calls := []func(){
		func() { d.GatherKernelCost(-1, 0, 1) },
		func() { d.GatherKernelCost(0, -1, 1) },
		func() { d.UnpackKernelCost(-1, 1) },
		func() { d.UnpackKernelCost(1, -1) },
		func() { d.CopyKernelCost(-1) },
		func() { d.MLPKernelCost(-1, 0) },
		func() { d.RemoteIssueCost(-1) },
	}
	for i, call := range calls {
		call := call
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("call %d did not panic on negative input", i)
				}
			}()
			call()
		}()
	}
}

func TestMultipleDevicesIndependentMemory(t *testing.T) {
	env := sim.NewEnv()
	d0 := NewDevice(env, 0, V100Params())
	d1 := NewDevice(env, 1, V100Params())
	d0.MustAlloc("x", 30<<30)
	if _, err := d1.Alloc("x", 30<<30); err != nil {
		t.Fatalf("second device shares the first's memory: %v", err)
	}
}

func TestStreamManyKernelsAccumulate(t *testing.T) {
	env, d := testDevice()
	s := d.NewStream("s")
	env.Go("host", func(p *sim.Proc) {
		var last sim.Time
		for i := 0; i < 50; i++ {
			_, end := s.Launch(p, sim.Millisecond)
			if end <= last {
				t.Errorf("kernel %d ends at %v, not after %v", i, end, last)
			}
			last = end
		}
		if s.Launches() != 50 {
			t.Errorf("Launches = %d", s.Launches())
		}
	})
	env.Run()
}
