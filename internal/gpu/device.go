package gpu

import (
	"fmt"
	"sort"

	"pgasemb/internal/sim"
)

// Device is one simulated GPU: an ID, a parameter set, a memory allocator
// and any number of in-order streams.
type Device struct {
	env    *sim.Env
	id     int
	params Params

	slow float64 // straggler slowdown factor on kernel costs (1 = healthy)

	allocated int64
	buffers   map[string]*Buffer
	streams   []*Stream
}

// Buffer is a named device-memory allocation. It carries no storage — the
// functional data lives in tensors — only capacity accounting, mirroring how
// the paper's strong-scaling configuration is bounded by the 32 GB card.
type Buffer struct {
	dev   *Device
	name  string
	bytes int64
	freed bool
}

// NewDevice returns a device with the given ID and parameters.
func NewDevice(env *sim.Env, id int, params Params) *Device {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		env:     env,
		id:      id,
		params:  params,
		slow:    1,
		buffers: make(map[string]*Buffer),
	}
}

// SetSlowdown scales every kernel cost on the device by factor — the
// fault-injection hook for straggler GPUs (thermal throttling, ECC retirement
// pressure, a noisy neighbour on the host). A factor of 1 restores full speed
// and is exact: cost*1.0 is the same IEEE-754 value as cost, so a device that
// was never slowed is bit-identical to one without the hook. Factors below 1
// (a device mysteriously faster than its parameters) are rejected.
func (d *Device) SetSlowdown(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("gpu%d: slowdown factor %g below 1", d.id, factor))
	}
	d.slow = factor
}

// Slowdown returns the current straggler factor (1 = healthy).
func (d *Device) Slowdown() float64 { return d.slow }

// ID returns the device ordinal.
func (d *Device) ID() int { return d.id }

// Params returns the device parameter set.
func (d *Device) Params() Params { return d.params }

// Env returns the simulation environment.
func (d *Device) Env() *sim.Env { return d.env }

// Alloc reserves bytes of device memory under the given name. It returns an
// error when the device would exceed capacity — the same constraint that
// shaped the paper's strong-scaling configuration (96 tables ≈ 24.6 GB on a
// 32 GB card).
func (d *Device) Alloc(name string, bytes int64) (*Buffer, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("gpu%d: negative allocation %d for %q", d.id, bytes, name)
	}
	if _, exists := d.buffers[name]; exists {
		return nil, fmt.Errorf("gpu%d: allocation %q already exists", d.id, name)
	}
	if d.allocated+bytes > d.params.MemoryCapacity {
		return nil, fmt.Errorf("gpu%d: out of memory: %q needs %d bytes, %d of %d in use",
			d.id, name, bytes, d.allocated, d.params.MemoryCapacity)
	}
	b := &Buffer{dev: d, name: name, bytes: bytes}
	d.buffers[name] = b
	d.allocated += bytes
	return b, nil
}

// MustAlloc is Alloc that panics on failure, for setup code whose sizes are
// validated elsewhere.
func (d *Device) MustAlloc(name string, bytes int64) *Buffer {
	b, err := d.Alloc(name, bytes)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases the buffer. Freeing twice panics.
func (b *Buffer) Free() {
	if b.freed {
		panic(fmt.Sprintf("gpu%d: double free of %q", b.dev.id, b.name))
	}
	b.freed = true
	b.dev.allocated -= b.bytes
	delete(b.dev.buffers, b.name)
}

// Bytes returns the buffer size.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Name returns the buffer name.
func (b *Buffer) Name() string { return b.name }

// Allocated returns the bytes currently in use on the device.
func (d *Device) Allocated() int64 { return d.allocated }

// AllocationNames returns the live allocation names, sorted, for diagnostics.
func (d *Device) AllocationNames() []string {
	names := make([]string, 0, len(d.buffers))
	for n := range d.buffers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewStream creates an in-order execution stream on the device
// (cudaStreamCreateWithFlags in the paper's Listing 2).
func (d *Device) NewStream(name string) *Stream {
	s := &Stream{dev: d, name: name}
	d.streams = append(d.streams, s)
	return s
}

// Stream returns the named stream, creating it on first use. Backends call
// it once per batch: reusing the in-order queue across batches models a
// long-lived CUDA stream and keeps the per-batch hot path allocation-free
// (a fresh stream per batch would also grow the device's stream list
// without bound over a long serving run).
func (d *Device) Stream(name string) *Stream {
	for _, s := range d.streams {
		if s.name == name {
			return s
		}
	}
	return d.NewStream(name)
}

// Stream is an in-order work queue on a device. Work items enqueue
// host-side (costing launch overhead on the caller) and run back-to-back on
// the device; Synchronize blocks the calling process until the queue drains,
// costing the host-side sync overhead on top.
type Stream struct {
	dev       *Device
	name      string
	busyUntil sim.Time
	launches  int
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Device returns the owning device.
func (s *Stream) Device() *Device { return s.dev }

// Launches returns how many work items were ever enqueued.
func (s *Stream) Launches() int { return s.launches }

// BusyUntil returns when the last enqueued work item finishes.
func (s *Stream) BusyUntil() sim.Time { return s.busyUntil }

// Launch enqueues a kernel of the given duration. The calling process pays
// the launch overhead; the kernel itself starts when the stream is free and
// runs without blocking the caller (asynchronous launch semantics). It
// returns the kernel's (start, end) interval.
func (s *Stream) Launch(p *sim.Proc, d sim.Duration) (start, end sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("gpu%d/%s: negative kernel duration %g", s.dev.id, s.name, d))
	}
	p.Wait(s.dev.params.KernelLaunch) // host-side cost
	start = p.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end = start + d
	s.busyUntil = end
	s.launches++
	return start, end
}

// Synchronize blocks the calling process until the stream drains, then pays
// the host-side synchronisation overhead.
func (s *Stream) Synchronize(p *sim.Proc) {
	p.WaitUntil(s.busyUntil)
	p.Wait(s.dev.params.StreamSync)
}

// Event is a marker in a stream's work queue (cudaEvent semantics): it
// completes when every kernel enqueued before it has finished.
type Event struct {
	stream   *Stream
	at       sim.Time
	recorded bool
}

// RecordEvent marks the stream's current tail: the event completes when all
// previously enqueued work does.
func (s *Stream) RecordEvent() *Event {
	return &Event{stream: s, at: s.busyUntil, recorded: true}
}

// CompletesAt returns the event's completion time.
func (e *Event) CompletesAt() sim.Time {
	if !e.recorded {
		panic("gpu: CompletesAt on unrecorded event")
	}
	return e.at
}

// WaitEvent makes subsequent work on s wait for e to complete
// (cudaStreamWaitEvent): cross-stream ordering without host involvement.
func (s *Stream) WaitEvent(e *Event) {
	if !e.recorded {
		panic("gpu: WaitEvent on unrecorded event")
	}
	if e.at > s.busyUntil {
		s.busyUntil = e.at
	}
}

// SynchronizeEvent blocks the calling process until the event completes
// (cudaEventSynchronize), without draining the rest of the stream.
func (e *Event) SynchronizeEvent(p *sim.Proc) {
	if !e.recorded {
		panic("gpu: SynchronizeEvent on unrecorded event")
	}
	p.WaitUntil(e.at)
	p.Wait(e.stream.dev.params.StreamSync)
}
