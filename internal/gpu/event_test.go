package gpu

import (
	"testing"

	"pgasemb/internal/sim"
)

func TestRecordEventCapturesTail(t *testing.T) {
	env, d := testDevice()
	s := d.NewStream("s")
	env.Go("host", func(p *sim.Proc) {
		_, end := s.Launch(p, 5*sim.Millisecond)
		e := s.RecordEvent()
		if e.CompletesAt() != end {
			t.Errorf("event completes at %v, want kernel end %v", e.CompletesAt(), end)
		}
	})
	env.Run()
}

func TestWaitEventOrdersAcrossStreams(t *testing.T) {
	env, d := testDevice()
	a, b := d.NewStream("a"), d.NewStream("b")
	env.Go("host", func(p *sim.Proc) {
		_, endA := a.Launch(p, 10*sim.Millisecond)
		e := a.RecordEvent()
		b.WaitEvent(e)
		startB, _ := b.Launch(p, 1*sim.Millisecond)
		if startB < endA {
			t.Errorf("stream b started at %v, before event at %v", startB, endA)
		}
	})
	env.Run()
}

func TestWaitEventNoopWhenAlreadyPast(t *testing.T) {
	env, d := testDevice()
	a, b := d.NewStream("a"), d.NewStream("b")
	env.Go("host", func(p *sim.Proc) {
		e := a.RecordEvent() // empty stream: completes immediately
		_, endB1 := b.Launch(p, 5*sim.Millisecond)
		b.WaitEvent(e)
		startB2, _ := b.Launch(p, 1*sim.Millisecond)
		if startB2 != endB1 {
			t.Errorf("past event delayed stream: start %v, want %v", startB2, endB1)
		}
	})
	env.Run()
}

func TestSynchronizeEventDoesNotDrainStream(t *testing.T) {
	env, d := testDevice()
	s := d.NewStream("s")
	env.Go("host", func(p *sim.Proc) {
		_, end1 := s.Launch(p, 2*sim.Millisecond)
		e := s.RecordEvent()
		s.Launch(p, 50*sim.Millisecond) // long tail after the event
		e.SynchronizeEvent(p)
		if p.Now() < end1 {
			t.Errorf("event sync returned at %v before event at %v", p.Now(), end1)
		}
		if p.Now() > end1+d.Params().StreamSync+1e-9 {
			t.Errorf("event sync waited for the whole stream: %v", p.Now())
		}
	})
	env.Run()
}

func TestUnrecordedEventPanics(t *testing.T) {
	var e Event
	for i, fn := range []func(){
		func() { e.CompletesAt() },
		func() { (&Stream{}).WaitEvent(&e) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
