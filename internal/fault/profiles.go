package fault

import (
	"fmt"
	"sort"
)

// profileBuilders maps profile names to schedule constructors. Profiles are
// written against the smallest interesting machine (2 GPUs, or 2 nodes for
// the NIC/proxy faults) and stay valid on anything larger; the layers that
// apply them ignore faults naming hardware the machine does not have.
var profileBuilders = map[string]func(seed uint64) *Schedule{
	// none is the healthy control: an empty schedule, byte- and
	// time-identical to running without a schedule at all.
	"none": func(seed uint64) *Schedule {
		return &Schedule{Seed: seed}
	},

	// flaky-link degrades the 0<->1 NVLink pair to a quarter of its
	// bandwidth early on, then takes it out entirely for a window — the
	// case replica failover is built for.
	"flaky-link": func(seed uint64) *Schedule {
		return &Schedule{Seed: seed, Events: []Event{
			{Kind: LinkDegrade, FromBatch: 1, ToBatch: 4, Src: 0, Dst: 1, Factor: 0.25},
			{Kind: LinkDegrade, FromBatch: 1, ToBatch: 4, Src: 1, Dst: 0, Factor: 0.25},
			{Kind: LinkDegrade, FromBatch: 5, ToBatch: 8, Src: 0, Dst: 1, Factor: OutageFactor},
			{Kind: LinkDegrade, FromBatch: 5, ToBatch: 8, Src: 1, Dst: 0, Factor: OutageFactor},
		}}
	},

	// degraded-nic throttles every rail of node 0 to 30% from batch 2 on —
	// the flapping-NIC case that stretches inter-node collectives and proxy
	// flushes alike.
	"degraded-nic": func(seed uint64) *Schedule {
		return &Schedule{Seed: seed, Events: []Event{
			{Kind: NICDegrade, FromBatch: 2, Node: 0, Rail: -1, Factor: 0.3},
		}}
	},

	// straggler doubles GPU 1's kernel costs from batch 2 on — thermal
	// throttling on one card, the classic tail-latency source.
	"straggler": func(seed uint64) *Schedule {
		return &Schedule{Seed: seed, Events: []Event{
			{Kind: Straggler, FromBatch: 2, GPU: 1, Factor: 2},
		}}
	},

	// lossy-proxy drops 20% of coalesced proxy deliveries everywhere — the
	// delivery-loss case the retry-at-Quiet machinery absorbs.
	"lossy-proxy": func(seed uint64) *Schedule {
		return &Schedule{Seed: seed, Events: []Event{
			{Kind: ProxyDrop, FromBatch: 0, Src: -1, Node: -1, DropProb: 0.2},
		}}
	},

	// mixed layers a degraded link, a straggler and proxy loss — the
	// everything-is-on-fire drill.
	"mixed": func(seed uint64) *Schedule {
		return &Schedule{Seed: seed, Events: []Event{
			{Kind: LinkDegrade, FromBatch: 1, Src: 0, Dst: 1, Factor: 0.25},
			{Kind: LinkDegrade, FromBatch: 1, Src: 1, Dst: 0, Factor: 0.25},
			{Kind: Straggler, FromBatch: 3, GPU: 1, Factor: 1.5},
			{Kind: ProxyDrop, FromBatch: 0, Src: -1, Node: -1, DropProb: 0.1},
		}}
	},
}

// Profiles returns the registered profile names, sorted.
func Profiles() []string {
	names := make([]string, 0, len(profileBuilders))
	for n := range profileBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Profile builds the named fault schedule with the given drop seed. Unknown
// names error descriptively, listing what exists.
func Profile(name string, seed uint64) (*Schedule, error) {
	build, ok := profileBuilders[name]
	if !ok {
		return nil, fmt.Errorf("fault: unknown profile %q (have %v)", name, Profiles())
	}
	s := build(seed)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("fault: profile %q: %w", name, err)
	}
	return s, nil
}
