package fault

import (
	"math"
	"strings"
	"testing"

	"pgasemb/internal/sim"
)

// The nil schedule and the zero schedule are both the healthy machine: every
// query must return the identity answer.
func TestEmptyScheduleIsHealthy(t *testing.T) {
	for name, s := range map[string]*Schedule{"nil": nil, "zero": {}} {
		if !s.Empty() {
			t.Errorf("%s schedule not Empty()", name)
		}
		if s.HasProxyDrops() {
			t.Errorf("%s schedule reports proxy drops", name)
		}
		if s.AnyActive(0) || s.AnyActive(100) {
			t.Errorf("%s schedule reports active faults", name)
		}
		if f := s.LinkFactor(3, 0, 1); f != 1 {
			t.Errorf("%s schedule LinkFactor = %g, want 1", name, f)
		}
		if f := s.NICFactor(3, 0, 0); f != 1 {
			t.Errorf("%s schedule NICFactor = %g, want 1", name, f)
		}
		if f := s.Slowdown(3, 1); f != 1 {
			t.Errorf("%s schedule Slowdown = %g, want 1", name, f)
		}
		if p := s.DropProb(3, 0, 1); p != 0 {
			t.Errorf("%s schedule DropProb = %g, want 0", name, p)
		}
		if s.Drops(3, 0, 1, 7, 0) {
			t.Errorf("%s schedule drops a delivery", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s schedule invalid: %v", name, err)
		}
	}
}

// Windows cover [FromBatch, ToBatch); a non-positive ToBatch never expires.
func TestEventWindows(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: Straggler, FromBatch: 2, ToBatch: 5, GPU: 0, Factor: 2},
		{Kind: LinkDegrade, FromBatch: 4, Src: 0, Dst: 1, Factor: 0.5},
	}}
	wantSlow := map[int]float64{0: 1, 1: 1, 2: 2, 3: 2, 4: 2, 5: 1, 100: 1}
	for b, want := range wantSlow {
		if got := s.Slowdown(b, 0); got != want {
			t.Errorf("Slowdown(batch %d) = %g, want %g", b, got, want)
		}
	}
	wantLink := map[int]float64{0: 1, 3: 1, 4: 0.5, 100: 0.5}
	for b, want := range wantLink {
		if got := s.LinkFactor(b, 0, 1); got != want {
			t.Errorf("LinkFactor(batch %d) = %g, want %g", b, got, want)
		}
	}
	for b, want := range map[int]bool{0: false, 1: false, 2: true, 5: true, 100: true} {
		if got := s.AnyActive(b); got != want {
			t.Errorf("AnyActive(batch %d) = %v, want %v", b, got, want)
		}
	}
}

// Overlapping degradations multiply; overlapping drop events combine as
// independent loss processes; wildcards (Rail/Src/Node < 0) match everything.
func TestFactorsCompose(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: LinkDegrade, Src: 0, Dst: 1, Factor: 0.5},
		{Kind: LinkDegrade, Src: 0, Dst: 1, Factor: 0.25},
		{Kind: NICDegrade, Node: 0, Rail: -1, Factor: 0.3},
		{Kind: NICDegrade, Node: 0, Rail: 2, Factor: 0.5},
		{Kind: ProxyDrop, Src: -1, Node: -1, DropProb: 0.5},
		{Kind: ProxyDrop, Src: 0, Node: 1, DropProb: 0.5},
	}}
	if f := s.LinkFactor(0, 0, 1); f != 0.125 {
		t.Errorf("stacked LinkFactor = %g, want 0.125", f)
	}
	if f := s.LinkFactor(0, 1, 0); f != 1 {
		t.Errorf("reverse direction LinkFactor = %g, want 1 (links are directed)", f)
	}
	if f := s.NICFactor(0, 0, 2); f != 0.15 {
		t.Errorf("rail 2 NICFactor = %g, want 0.15 (wildcard x specific)", f)
	}
	if f := s.NICFactor(0, 0, 0); f != 0.3 {
		t.Errorf("rail 0 NICFactor = %g, want 0.3", f)
	}
	if f := s.NICFactor(0, 1, 0); f != 1 {
		t.Errorf("healthy node NICFactor = %g, want 1", f)
	}
	if p := s.DropProb(0, 0, 1); p != 0.75 {
		t.Errorf("stacked DropProb = %g, want 0.75 (1 - 0.5*0.5)", p)
	}
	if p := s.DropProb(0, 2, 0); p != 0.5 {
		t.Errorf("wildcard-only DropProb = %g, want 0.5", p)
	}
}

func TestMaxSlowdown(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: Straggler, GPU: 1, Factor: 2},
		{Kind: Straggler, GPU: 3, Factor: 3},
	}}
	if f := s.MaxSlowdown(0, 4); f != 3 {
		t.Errorf("MaxSlowdown over 4 GPUs = %g, want 3", f)
	}
	if f := s.MaxSlowdown(0, 2); f != 2 {
		t.Errorf("MaxSlowdown over 2 GPUs = %g, want 2", f)
	}
}

// Drop decisions are a pure function of (seed, pe, node, seq, attempt): the
// same query always answers the same, the empirical rate tracks DropProb,
// and a different seed replays a different loss pattern.
func TestDropsDeterministicAndCalibrated(t *testing.T) {
	mk := func(seed uint64) *Schedule {
		return &Schedule{Seed: seed, Events: []Event{
			{Kind: ProxyDrop, Src: -1, Node: -1, DropProb: 0.3},
		}}
	}
	a, b := mk(42), mk(42)
	const n = 10000
	drops, diffSeed := 0, 0
	other := mk(43)
	for seq := int64(0); seq < n; seq++ {
		got := a.Drops(0, 1, 2, seq, 0)
		if got != b.Drops(0, 1, 2, seq, 0) {
			t.Fatalf("same-seed schedules disagree at seq %d", seq)
		}
		if got != a.Drops(0, 1, 2, seq, 0) {
			t.Fatalf("repeated query changed its answer at seq %d", seq)
		}
		if got {
			drops++
		}
		if got != other.Drops(0, 1, 2, seq, 0) {
			diffSeed++
		}
	}
	rate := float64(drops) / n
	if math.Abs(rate-0.3) > 0.03 {
		t.Errorf("empirical drop rate %.3f, want 0.3 ±0.03", rate)
	}
	if diffSeed == 0 {
		t.Error("seed 43 replayed seed 42's loss pattern exactly")
	}
	// A fresh attempt is a fresh draw: some dropped first attempts must
	// succeed on retry, or retries could never make progress.
	recovered := false
	for seq := int64(0); seq < n && !recovered; seq++ {
		recovered = a.Drops(0, 1, 2, seq, 0) && !a.Drops(0, 1, 2, seq, 1)
	}
	if !recovered {
		t.Error("no dropped delivery ever succeeded on its second attempt")
	}
}

func TestValidateRejectsMalformedEvents(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"negative-from", Event{Kind: Straggler, FromBatch: -1, Factor: 2}, "negative FromBatch"},
		{"empty-window", Event{Kind: Straggler, FromBatch: 3, ToBatch: 3, Factor: 2}, "empty window"},
		{"link-self", Event{Kind: LinkDegrade, Src: 1, Dst: 1, Factor: 0.5}, "self link"},
		{"link-negative-gpu", Event{Kind: LinkDegrade, Src: -1, Dst: 0, Factor: 0.5}, "negative GPU pair"},
		{"link-zero-factor", Event{Kind: LinkDegrade, Src: 0, Dst: 1, Factor: 0}, "outside (0, 1]"},
		{"link-factor-above-one", Event{Kind: LinkDegrade, Src: 0, Dst: 1, Factor: 1.5}, "outside (0, 1]"},
		{"nic-negative-node", Event{Kind: NICDegrade, Node: -1, Factor: 0.5}, "negative node"},
		{"nic-bad-factor", Event{Kind: NICDegrade, Node: 0, Factor: 2}, "outside (0, 1]"},
		{"straggler-negative-gpu", Event{Kind: Straggler, GPU: -1, Factor: 2}, "negative GPU"},
		{"straggler-speedup", Event{Kind: Straggler, GPU: 0, Factor: 0.5}, "below 1"},
		{"drop-prob-one", Event{Kind: ProxyDrop, DropProb: 1}, "outside [0, 1)"},
		{"drop-prob-negative", Event{Kind: ProxyDrop, DropProb: -0.1}, "outside [0, 1)"},
		{"unknown-kind", Event{Kind: Kind(99), Factor: 1}, "unknown kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &Schedule{Events: []Event{c.ev}}
			err := s.Validate()
			if err == nil {
				t.Fatalf("event %+v accepted", c.ev)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
	ok := &Schedule{Events: []Event{
		{Kind: LinkDegrade, Src: 0, Dst: 1, Factor: 0.5, FromBatch: 1, ToBatch: 4},
		{Kind: NICDegrade, Node: 0, Rail: -1, Factor: OutageFactor},
		{Kind: Straggler, GPU: 2, Factor: 1},
		{Kind: ProxyDrop, Src: -1, Node: -1, DropProb: 0},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("well-formed schedule rejected: %v", err)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	var zero RetryPolicy
	if got := zero.EffectiveTimeout(); got != 50*sim.Microsecond {
		t.Errorf("default timeout %g, want 50us", float64(got))
	}
	if got := zero.EffectiveBackoff(); got != 2 {
		t.Errorf("default backoff %g, want 2", got)
	}
	if got := zero.EffectiveMaxAttempts(); got != 16 {
		t.Errorf("default attempt cap %d, want 16", got)
	}
	set := RetryPolicy{Timeout: sim.Millisecond, Backoff: 1.5, MaxAttempts: 3}
	if set.EffectiveTimeout() != sim.Millisecond || set.EffectiveBackoff() != 1.5 || set.EffectiveMaxAttempts() != 3 {
		t.Errorf("explicit policy not passed through: %+v", set)
	}
}

func TestProfiles(t *testing.T) {
	names := Profiles()
	want := []string{"degraded-nic", "flaky-link", "lossy-proxy", "mixed", "none", "straggler"}
	if len(names) != len(want) {
		t.Fatalf("profiles = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("profiles = %v, want %v (sorted)", names, want)
		}
	}
	for _, n := range names {
		s, err := Profile(n, 7)
		if err != nil {
			t.Fatalf("Profile(%q): %v", n, err)
		}
		if s.Seed != 7 {
			t.Errorf("profile %q dropped the seed", n)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", n, err)
		}
	}
	if s, _ := Profile("none", 1); !s.Empty() {
		t.Error("profile none is not the empty schedule")
	}
	if s, _ := Profile("lossy-proxy", 1); !s.HasProxyDrops() {
		t.Error("lossy-proxy has no proxy drops")
	}
	if s, _ := Profile("flaky-link", 1); s.HasProxyDrops() {
		t.Error("flaky-link claims proxy drops")
	}
	_, err := Profile("nope", 1)
	if err == nil {
		t.Fatal("unknown profile accepted")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-profile error %q does not list %q", err, n)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		LinkDegrade: "link-degrade",
		NICDegrade:  "nic-degrade",
		Straggler:   "straggler",
		ProxyDrop:   "proxy-drop",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Errorf("unknown kind string %q does not carry the value", Kind(99).String())
	}
}
