// Package fault provides deterministic, replayable fault schedules for the
// simulated machine: link and NIC bandwidth degradation (including outage
// windows), per-GPU straggler slowdowns, and proxy delivery drops. A
// Schedule is pure data plus pure query functions — it holds no clock and
// mutates nothing; the layers that own pipes, devices and proxies (the
// retrieval System, the serving layer) query it at batch boundaries and
// apply the returned factors through the fault hooks those layers expose
// (sim.Pipe.SetDegrade, gpu.Device.SetSlowdown, fabric
// Interconnect.SetRailDegrade, pgas.FaultHooks).
//
// Faults are windowed on the *batch index*, not on wall-clock time: the
// route-plan compiler runs host-side per batch, so batch-indexed health is
// what lets it pick replicas around a degraded link before the batch is
// issued, and it makes every fault decision a pure function of (schedule,
// batch) — two same-seed runs replay byte-identically regardless of how
// long each batch takes.
package fault

import (
	"fmt"

	"pgasemb/internal/sim"
)

// OutageFactor is the residual bandwidth factor used to model a link or NIC
// outage. Fully stopping a fluid pipe would strand queued traffic forever;
// a 1000x degradation makes the wire useless enough that any sane routing
// layer avoids it, while everything already in flight still terminates.
const OutageFactor = 1e-3

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// LinkDegrade scales the directed NVLink pipe Src->Dst by Factor.
	LinkDegrade Kind = iota
	// NICDegrade scales node Node's NIC rail Rail (or all rails when Rail
	// is negative) by Factor.
	NICDegrade
	// Straggler scales every kernel cost on GPU by Factor (>= 1).
	Straggler
	// ProxyDrop makes inter-node proxy deliveries from PE Src (all PEs when
	// negative) to node Node (all nodes when negative) fail with
	// probability DropProb per attempt.
	ProxyDrop
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case LinkDegrade:
		return "link-degrade"
	case NICDegrade:
		return "nic-degrade"
	case Straggler:
		return "straggler"
	case ProxyDrop:
		return "proxy-drop"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Event is one windowed fault. The window covers batch indices
// [FromBatch, ToBatch); a non-positive ToBatch leaves the fault active for
// the rest of the run. Which of the remaining fields matter depends on
// Kind (see the Kind constants).
type Event struct {
	Kind               Kind
	FromBatch, ToBatch int

	Src, Dst   int     // LinkDegrade (GPU pair), ProxyDrop (Src = PE)
	Node, Rail int     // NICDegrade (Rail < 0 = all rails), ProxyDrop (Node = destination)
	GPU        int     // Straggler
	Factor     float64 // LinkDegrade/NICDegrade in (0, 1], Straggler >= 1
	DropProb   float64 // ProxyDrop in [0, 1)
}

// active reports whether the event covers batch index b.
func (e Event) active(b int) bool {
	return b >= e.FromBatch && (e.ToBatch <= 0 || b < e.ToBatch)
}

// Schedule is a seeded, immutable fault plan. The zero value (and nil) is
// the empty schedule: every query returns the healthy answer. Schedules are
// safe for concurrent readers.
type Schedule struct {
	// Seed drives the deterministic drop decisions of ProxyDrop events. It
	// is independent of the workload seed so the same fault plan can replay
	// against different traffic.
	Seed uint64

	// Events are the windowed faults. Overlapping degradations multiply.
	Events []Event

	// Retry tunes how the pgas proxy recovers dropped deliveries. The zero
	// value means defaults (see RetryPolicy).
	Retry RetryPolicy
}

// RetryPolicy tunes delivery-loss recovery at the proxy/Quiet boundary.
type RetryPolicy struct {
	// Timeout is how long past the expected delivery the proxy waits before
	// retransmitting. Non-positive means 50 us.
	Timeout sim.Duration

	// Backoff multiplies the timeout after each failed attempt. Values
	// below 1 mean 2 (binary exponential backoff).
	Backoff float64

	// MaxAttempts caps delivery attempts per message. Non-positive means
	// 16.
	MaxAttempts int
}

// Timeout returns the effective retransmission timeout.
func (r RetryPolicy) timeout() sim.Duration {
	if r.Timeout <= 0 {
		return 50 * sim.Microsecond
	}
	return r.Timeout
}

// EffectiveTimeout returns the retransmission timeout with defaults applied.
func (r RetryPolicy) EffectiveTimeout() sim.Duration { return r.timeout() }

// EffectiveBackoff returns the backoff multiplier with defaults applied.
func (r RetryPolicy) EffectiveBackoff() float64 {
	if r.Backoff < 1 {
		return 2
	}
	return r.Backoff
}

// EffectiveMaxAttempts returns the attempt cap with defaults applied.
func (r RetryPolicy) EffectiveMaxAttempts() int {
	if r.MaxAttempts <= 0 {
		return 16
	}
	return r.MaxAttempts
}

// Validate reports the first malformed event, if any. Nil schedules are
// valid (and empty).
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		prefix := fmt.Sprintf("fault: event %d (%s)", i, e.Kind)
		if e.FromBatch < 0 {
			return fmt.Errorf("%s: negative FromBatch %d", prefix, e.FromBatch)
		}
		if e.ToBatch > 0 && e.ToBatch <= e.FromBatch {
			return fmt.Errorf("%s: empty window [%d, %d)", prefix, e.FromBatch, e.ToBatch)
		}
		switch e.Kind {
		case LinkDegrade:
			switch {
			case e.Src < 0 || e.Dst < 0:
				return fmt.Errorf("%s: negative GPU pair (%d, %d)", prefix, e.Src, e.Dst)
			case e.Src == e.Dst:
				return fmt.Errorf("%s: self link on GPU %d", prefix, e.Src)
			case e.Factor <= 0 || e.Factor > 1:
				return fmt.Errorf("%s: factor %g outside (0, 1]", prefix, e.Factor)
			}
		case NICDegrade:
			switch {
			case e.Node < 0:
				return fmt.Errorf("%s: negative node %d", prefix, e.Node)
			case e.Factor <= 0 || e.Factor > 1:
				return fmt.Errorf("%s: factor %g outside (0, 1]", prefix, e.Factor)
			}
		case Straggler:
			switch {
			case e.GPU < 0:
				return fmt.Errorf("%s: negative GPU %d", prefix, e.GPU)
			case e.Factor < 1:
				return fmt.Errorf("%s: slowdown factor %g below 1", prefix, e.Factor)
			}
		case ProxyDrop:
			if e.DropProb < 0 || e.DropProb >= 1 {
				return fmt.Errorf("%s: drop probability %g outside [0, 1)", prefix, e.DropProb)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Empty reports whether the schedule injects nothing (nil or no events).
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// HasProxyDrops reports whether any event injects proxy delivery loss — the
// signal for installing the pgas retry hooks at all.
func (s *Schedule) HasProxyDrops() bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == ProxyDrop && e.DropProb > 0 {
			return true
		}
	}
	return false
}

// LinkFactor returns the bandwidth factor for the directed NVLink pipe
// src->dst at batch b: the product of all active LinkDegrade events on the
// pair, 1 when healthy.
func (s *Schedule) LinkFactor(b, src, dst int) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Kind == LinkDegrade && e.Src == src && e.Dst == dst && e.active(b) {
			f *= e.Factor
		}
	}
	return f
}

// NICFactor returns the bandwidth factor for node's NIC rail at batch b.
func (s *Schedule) NICFactor(b, node, rail int) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Kind == NICDegrade && e.Node == node && (e.Rail < 0 || e.Rail == rail) && e.active(b) {
			f *= e.Factor
		}
	}
	return f
}

// Slowdown returns GPU gpu's kernel-cost factor at batch b (>= 1).
func (s *Schedule) Slowdown(b, gpu int) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Kind == Straggler && e.GPU == gpu && e.active(b) {
			f *= e.Factor
		}
	}
	return f
}

// DropProb returns the per-attempt delivery-loss probability for proxy
// traffic from PE pe to node dstNode at batch b. Overlapping drop events
// combine as independent loss processes: 1 - prod(1 - p).
func (s *Schedule) DropProb(b, pe, dstNode int) float64 {
	if s == nil {
		return 0
	}
	keep := 1.0
	for _, e := range s.Events {
		if e.Kind == ProxyDrop && (e.Src < 0 || e.Src == pe) && (e.Node < 0 || e.Node == dstNode) && e.active(b) {
			keep *= 1 - e.DropProb
		}
	}
	return 1 - keep
}

// Drops decides deterministically whether the seq-th proxy flush from PE pe
// to dstNode is lost on the given delivery attempt at batch b. The decision
// hashes (Seed, pe, dstNode, seq, attempt) to a uniform [0, 1) draw and
// compares it against DropProb — a pure function, so same-seed runs replay
// the exact same loss pattern.
func (s *Schedule) Drops(b, pe, dstNode int, seq int64, attempt int) bool {
	p := s.DropProb(b, pe, dstNode)
	if p <= 0 {
		return false
	}
	return uniform01(s.Seed, uint64(pe), uint64(dstNode), uint64(seq), uint64(attempt)) < p
}

// AnyActive reports whether any event of any kind is active at batch b —
// the coarse "machine is degraded right now" health signal the serving
// layer's shedding and stale-cache policies key on.
func (s *Schedule) AnyActive(b int) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.active(b) {
			return true
		}
	}
	return false
}

// MaxSlowdown returns the largest slowdown any GPU in [0, gpus) sees at
// batch b — the health signal serving-layer shedding policies key on.
func (s *Schedule) MaxSlowdown(b, gpus int) float64 {
	worst := 1.0
	for g := 0; g < gpus; g++ {
		if f := s.Slowdown(b, g); f > worst {
			worst = f
		}
	}
	return worst
}

// uniform01 maps the given words to a uniform [0, 1) draw with a splitmix64
// finalization chain — stateless, so concurrent queries never race.
func uniform01(seed uint64, words ...uint64) float64 {
	x := seed ^ 0x9E3779B97F4A7C15
	for _, w := range words {
		x = splitmix64(x + w*0xBF58476D1CE4E5B9)
	}
	return float64(splitmix64(x)>>11) / (1 << 53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
