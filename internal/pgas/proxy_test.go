package pgas

import (
	"math"
	"testing"

	"pgasemb/internal/fabric"
	"pgasemb/internal/nvlink"
	"pgasemb/internal/sim"
)

// newClusterRuntime wires an N-node cluster runtime for proxy tests.
func newClusterRuntime(env *sim.Env, nodes, perNode int, cfg ProxyConfig) (*Runtime, *fabric.Interconnect) {
	cl := fabric.Cluster{Nodes: nodes, GPUsPerNode: perNode, IntraLinks: 2}
	fab := nvlink.NewFabric(env, nvlink.DefaultParams(), cl)
	net := fabric.NewInterconnect(env, cl, fabric.DefaultNICParams())
	return NewCluster(env, fab, net, cfg), net
}

func TestProxyCoalescesSmallStores(t *testing.T) {
	env := sim.NewEnv()
	rt, net := newClusterRuntime(env, 2, 2, ProxyConfig{StagingBytes: 64 << 10, DrainInterval: 0})
	pe, remote := rt.PE(0), rt.PE(2) // different nodes
	env.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			pe.PutBytes(remote, 256)
		}
		pe.Quiet(p)
	})
	env.Run()
	// 100 puts x 256 B = 25600 B < 64 KiB: everything coalesces into the
	// single Quiet-driven flush — one NIC message, not 100.
	if net.Messages() != 1 {
		t.Fatalf("NIC carried %d messages, want 1 coalesced", net.Messages())
	}
	if net.PayloadBytes() != 100*256 {
		t.Fatalf("NIC payload %g, want %d", net.PayloadBytes(), 100*256)
	}
	if pe.Puts() != 100 {
		t.Fatalf("PE counted %d puts, want 100", pe.Puts())
	}
	if pe.proxy.flushes != 1 {
		t.Fatalf("proxy flushed %d times, want 1", pe.proxy.flushes)
	}
}

func TestProxyStagingThresholdFlush(t *testing.T) {
	env := sim.NewEnv()
	rt, net := newClusterRuntime(env, 2, 2, ProxyConfig{StagingBytes: 4096, DrainInterval: 0})
	pe, remote := rt.PE(0), rt.PE(2)
	env.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 32; i++ { // 32 x 256 B = 8192 B = two full buffers
			pe.PutBytes(remote, 256)
		}
		if got := pe.proxy.flushes; got != 2 {
			t.Errorf("threshold flushed %d times before quiet, want 2", got)
		}
		pe.Quiet(p)
	})
	env.Run()
	if pe.proxy.flushes != 2 { // quiet found empty buffers
		t.Fatalf("total flushes %d, want 2", pe.proxy.flushes)
	}
	if net.PayloadBytes() != 8192 {
		t.Fatalf("NIC payload %g, want 8192", net.PayloadBytes())
	}
}

func TestProxyDrainTimer(t *testing.T) {
	env := sim.NewEnv()
	interval := 10 * sim.Microsecond
	rt, net := newClusterRuntime(env, 2, 2, ProxyConfig{StagingBytes: 1 << 20, DrainInterval: interval})
	pe, remote := rt.PE(0), rt.PE(2)
	env.Go("sender", func(p *sim.Proc) {
		pe.PutBytes(remote, 512)
		p.Wait(100 * sim.Microsecond) // no Quiet: only the timer can flush
	})
	env.Run()
	if net.Messages() != 1 {
		t.Fatalf("drain timer did not flush: %d NIC messages", net.Messages())
	}
	// The flush happened at the drain interval, so delivery is interval +
	// launch + wire/bandwidth + latency.
	nic := net.NIC()
	want := interval + nic.MessageOverhead + nic.WireBytes(512)/nic.Bandwidth + nic.Latency
	if got := pe.proxy.lastDelivery; math.Abs(got-want) > 1e-9 {
		t.Fatalf("timer flush delivered at %g, want %g", got, want)
	}
}

func TestProxySameNodeStoresStayOnNVLink(t *testing.T) {
	env := sim.NewEnv()
	rt, net := newClusterRuntime(env, 2, 2, DefaultProxyConfig())
	pe, peer := rt.PE(0), rt.PE(1) // same node
	env.Go("sender", func(p *sim.Proc) {
		pe.PutBytes(peer, 4096)
		pe.Quiet(p)
	})
	env.Run()
	if net.Messages() != 0 {
		t.Fatalf("same-node store crossed the NIC (%d messages)", net.Messages())
	}
	if rt.Fabric().TotalBytes() == 0 {
		t.Fatal("same-node store did not use NVLink")
	}
}

func TestProxyQuietWaitsForDelivery(t *testing.T) {
	env := sim.NewEnv()
	rt, net := newClusterRuntime(env, 2, 2, DefaultProxyConfig())
	pe, remote := rt.PE(0), rt.PE(2)
	payload := 4096
	var quietAt sim.Time
	env.Go("sender", func(p *sim.Proc) {
		pe.PutBytes(remote, payload)
		pe.Quiet(p)
		quietAt = p.Now()
	})
	env.Run()
	nic := net.NIC()
	want := nic.MessageOverhead + nic.WireBytes(payload)/nic.Bandwidth + nic.Latency
	if math.Abs(quietAt-want) > 1e-9 {
		t.Fatalf("quiet returned at %g, want NIC delivery %g", quietAt, want)
	}
}

// PutVectors must stage per vector, producing byte-for-byte the same NIC
// traffic (messages, payload, flush boundaries) as individual puts — the
// invariant that keeps timing-only and functional cluster runs identical.
func TestProxyPutVectorsMatchesIndividualPuts(t *testing.T) {
	run := func(vectors bool) (int64, float64, sim.Time) {
		env := sim.NewEnv()
		cfg := ProxyConfig{StagingBytes: 3000, DrainInterval: 0}
		rt, net := newClusterRuntime(env, 2, 2, cfg)
		pe, remote := rt.PE(1), rt.PE(3)
		env.Go("sender", func(p *sim.Proc) {
			if vectors {
				pe.PutVectors(remote, 40, 256)
			} else {
				for i := 0; i < 40; i++ {
					pe.PutBytes(remote, 256)
				}
			}
			pe.Quiet(p)
		})
		end := env.Run()
		return net.Messages(), net.PayloadBytes(), end
	}
	m1, p1, e1 := run(true)
	m2, p2, e2 := run(false)
	if m1 != m2 || p1 != p2 || e1 != e2 {
		t.Fatalf("PutVectors (%d msgs, %g B, end %g) != individual puts (%d msgs, %g B, end %g)",
			m1, p1, e1, m2, p2, e2)
	}
}

func TestAggregatorRoutesCrossNodeThroughProxy(t *testing.T) {
	env := sim.NewEnv()
	rt, net := newClusterRuntime(env, 2, 2, DefaultProxyConfig())
	pe, remote := rt.PE(0), rt.PE(2)
	agg := NewAggregator(pe, 1024, sim.Millisecond)
	env.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			agg.StoreBytes(remote, 256) // two 1024 B aggregator flushes
		}
		agg.FlushAll()
		pe.Quiet(p)
	})
	env.Run()
	if net.PayloadBytes() != 8*256 {
		t.Fatalf("NIC payload %g, want %d", net.PayloadBytes(), 8*256)
	}
	if net.Messages() == 0 {
		t.Fatal("aggregated cross-node stores never reached the NIC")
	}
}

func TestProxyResetClearsState(t *testing.T) {
	env := sim.NewEnv()
	rt, net := newClusterRuntime(env, 2, 2, ProxyConfig{StagingBytes: 1 << 20, DrainInterval: 0})
	pe, remote := rt.PE(0), rt.PE(2)
	env.Go("sender", func(p *sim.Proc) {
		pe.PutBytes(remote, 123) // left pending: no threshold, no timer
	})
	env.Run()
	rt.ResetCounters()
	net.Reset()
	if pe.proxy.bufs[1].pending != 0 || pe.proxy.flushes != 0 || pe.proxy.lastDelivery != 0 {
		t.Fatal("proxy state survived reset")
	}
	env.Go("sender2", func(p *sim.Proc) {
		pe.Quiet(p)
	})
	env.Run()
	if net.Messages() != 0 {
		t.Fatalf("reset proxy still flushed %d messages", net.Messages())
	}
}
