package pgas

import (
	"math"
	"testing"

	"pgasemb/internal/nvlink"
	"pgasemb/internal/sim"
)

func testRuntime(n int) (*sim.Env, *Runtime) {
	env := sim.NewEnv()
	fabric := nvlink.NewFabric(env, nvlink.DefaultParams(), nvlink.DGXStation(n))
	return env, New(env, fabric)
}

func TestRuntimeConstruction(t *testing.T) {
	_, rt := testRuntime(4)
	if rt.NumPEs() != 4 {
		t.Fatalf("NumPEs = %d", rt.NumPEs())
	}
	for i := 0; i < 4; i++ {
		if rt.PE(i).ID() != i {
			t.Fatalf("PE(%d).ID() = %d", i, rt.PE(i).ID())
		}
	}
}

func TestPEOutOfRangePanics(t *testing.T) {
	_, rt := testRuntime(2)
	defer func() {
		if recover() == nil {
			t.Error("PE(5) did not panic")
		}
	}()
	rt.PE(5)
}

func TestPutFloat32sCopiesImmediately(t *testing.T) {
	_, rt := testRuntime(2)
	src := []float32{1, 2, 3}
	dst := make([]float32, 3)
	rt.PE(0).PutFloat32s(rt.PE(1), dst, src)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
}

func TestPutTimingIncludesHeader(t *testing.T) {
	env, rt := testRuntime(2)
	// 64 floats = 256 B payload + 32 B header = 288 B over 50 GB/s + latency.
	src := make([]float32, 64)
	dst := make([]float32, 64)
	delivered := rt.PE(0).PutFloat32s(rt.PE(1), dst, src)
	params := nvlink.DefaultParams()
	want := params.LinkLatency + 288/(2*params.LinkBandwidth)
	if math.Abs(delivered-want) > 1e-15 {
		t.Fatalf("delivered = %v, want %v", delivered, want)
	}
	if env.Now() != 0 {
		t.Fatal("Put must not advance the caller's clock (asynchronous)")
	}
}

func TestLocalPutBypassesFabric(t *testing.T) {
	_, rt := testRuntime(2)
	pe := rt.PE(0)
	src := []float32{5}
	dst := make([]float32, 1)
	at := pe.PutFloat32s(pe, dst, src)
	if at != 0 {
		t.Fatalf("local put delivered at %v, want now (0)", at)
	}
	if pe.Puts() != 0 || pe.WireBytes() != 0 {
		t.Fatal("local put must not count as communication")
	}
	if dst[0] != 5 {
		t.Fatal("local put did not copy")
	}
}

func TestPutLengthMismatchPanics(t *testing.T) {
	_, rt := testRuntime(2)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	rt.PE(0).PutFloat32s(rt.PE(1), make([]float32, 2), make([]float32, 3))
}

func TestPutBytesAccounting(t *testing.T) {
	_, rt := testRuntime(2)
	pe := rt.PE(0)
	pe.PutBytes(rt.PE(1), 256)
	pe.PutBytes(rt.PE(1), 256)
	if pe.Puts() != 2 {
		t.Fatalf("Puts = %d", pe.Puts())
	}
	if pe.PayloadBytes() != 512 {
		t.Fatalf("PayloadBytes = %v", pe.PayloadBytes())
	}
	if pe.WireBytes() != 512+64 {
		t.Fatalf("WireBytes = %v", pe.WireBytes())
	}
	if pe.Counter().Total() != 512 {
		t.Fatalf("counter total = %v", pe.Counter().Total())
	}
}

func TestPutBytesNegativePanics(t *testing.T) {
	_, rt := testRuntime(2)
	defer func() {
		if recover() == nil {
			t.Error("negative payload did not panic")
		}
	}()
	rt.PE(0).PutBytes(rt.PE(1), -1)
}

func TestAtomicAddAccumulates(t *testing.T) {
	_, rt := testRuntime(2)
	dst := []float32{1, 1}
	rt.PE(0).AtomicAddFloat32s(rt.PE(1), dst, []float32{2, 3})
	rt.PE(0).AtomicAddFloat32s(rt.PE(1), dst, []float32{10, 10})
	if dst[0] != 13 || dst[1] != 14 {
		t.Fatalf("dst = %v", dst)
	}
	if rt.PE(0).Puts() != 2 {
		t.Fatal("atomics should count as puts")
	}
}

func TestGetChargesTargetDirection(t *testing.T) {
	_, rt := testRuntime(2)
	src := []float32{9}
	dst := make([]float32, 1)
	rt.PE(0).GetFloat32s(rt.PE(1), dst, src)
	if dst[0] != 9 {
		t.Fatal("get did not copy")
	}
	// The data flows 1 -> 0, so PE 1's egress is charged.
	if rt.PE(1).Puts() != 1 || rt.PE(0).Puts() != 0 {
		t.Fatalf("puts: pe0=%d pe1=%d", rt.PE(0).Puts(), rt.PE(1).Puts())
	}
}

func TestQuietWaitsForDrain(t *testing.T) {
	env, rt := testRuntime(2)
	var quietAt sim.Time
	env.Go("pe0", func(p *sim.Proc) {
		// 50 MB at 50 GB/s = 1 ms drain.
		rt.PE(0).PutBytes(rt.PE(1), 50_000_000)
		rt.PE(0).Quiet(p)
		quietAt = p.Now()
	})
	env.Run()
	// 50 MB payload + per-256B-fragment headers = 56.25 MB wire = 1.125 ms.
	if quietAt < 1.1*sim.Millisecond {
		t.Fatalf("Quiet returned at %v, before drain", quietAt)
	}
	if quietAt > 1.2*sim.Millisecond {
		t.Fatalf("Quiet returned at %v, far after drain", quietAt)
	}
}

func TestQuietIgnoresOtherPEs(t *testing.T) {
	env, rt := testRuntime(3)
	var quietAt sim.Time
	env.Go("main", func(p *sim.Proc) {
		rt.PE(1).PutBytes(rt.PE(2), 500_000_000) // 10 ms on someone else's pipe
		rt.PE(0).Quiet(p)                        // PE 0 has nothing outstanding
		quietAt = p.Now()
	})
	env.Run()
	if quietAt != 0 {
		t.Fatalf("idle PE's Quiet waited until %v", quietAt)
	}
}

func TestTotalTraceMergesPEs(t *testing.T) {
	_, rt := testRuntime(3)
	rt.PE(0).PutBytes(rt.PE(1), 100)
	rt.PE(1).PutBytes(rt.PE(2), 200)
	rt.PE(2).PutBytes(rt.PE(0), 300)
	if got := rt.TotalTrace().Total(); got != 600 {
		t.Fatalf("TotalTrace total = %v", got)
	}
}

func TestResetCounters(t *testing.T) {
	_, rt := testRuntime(2)
	rt.PE(0).PutBytes(rt.PE(1), 100)
	rt.ResetCounters()
	pe := rt.PE(0)
	if pe.Puts() != 0 || pe.PayloadBytes() != 0 || pe.WireBytes() != 0 || pe.Counter().Total() != 0 {
		t.Fatal("ResetCounters left residue")
	}
}

func TestBarrierAcrossPEs(t *testing.T) {
	env, rt := testRuntime(4)
	b := rt.NewBarrier()
	var released []sim.Time
	for i := 0; i < 4; i++ {
		i := i
		env.Go("pe", func(p *sim.Proc) {
			p.Wait(sim.Duration(i) * sim.Millisecond)
			b.Await(p)
			released = append(released, p.Now())
		})
	}
	env.Run()
	for _, at := range released {
		if at != 3*sim.Millisecond {
			t.Fatalf("released at %v, want 3ms", at)
		}
	}
}

func TestPutsOverlapOnDistinctPipes(t *testing.T) {
	// Stores to different destinations drain concurrently: total drain time
	// equals one destination's share, not the sum.
	env, rt := testRuntime(4)
	var quietAt sim.Time
	env.Go("pe0", func(p *sim.Proc) {
		for dst := 1; dst < 4; dst++ {
			rt.PE(0).PutBytes(rt.PE(dst), 50_000_000) // 1 ms each pipe
		}
		rt.PE(0).Quiet(p)
		quietAt = p.Now()
	})
	env.Run()
	// 50 MB payload fragments into 256 B messages, each with a 32 B header:
	// 56.25 MB on the wire = 1.125 ms per pipe. Serialization would take 3x.
	if quietAt > 1.2*sim.Millisecond {
		t.Fatalf("parallel pipes serialized: quiet at %v", quietAt)
	}
	if quietAt < 1.1*sim.Millisecond {
		t.Fatalf("drain faster than the wire allows: %v", quietAt)
	}
}

func TestGetLengthMismatchPanics(t *testing.T) {
	_, rt := testRuntime(2)
	defer func() {
		if recover() == nil {
			t.Error("get length mismatch did not panic")
		}
	}()
	rt.PE(0).GetFloat32s(rt.PE(1), make([]float32, 2), make([]float32, 3))
}

func TestAtomicAddLengthMismatchPanics(t *testing.T) {
	_, rt := testRuntime(2)
	defer func() {
		if recover() == nil {
			t.Error("atomic add length mismatch did not panic")
		}
	}()
	rt.PE(0).AtomicAddFloat32s(rt.PE(1), make([]float32, 2), make([]float32, 3))
}

func TestPutVectorsValidation(t *testing.T) {
	_, rt := testRuntime(2)
	for i, call := range []func(){
		func() { rt.PE(0).PutVectors(rt.PE(1), -1, 256) },
		func() { rt.PE(0).PutVectors(rt.PE(1), 1, -1) },
	} {
		call := call
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			call()
		}()
	}
}

func TestPutVectorsZeroCountIsFree(t *testing.T) {
	_, rt := testRuntime(2)
	rt.PE(0).PutVectors(rt.PE(1), 0, 256)
	if rt.PE(0).Puts() != 0 || rt.PE(0).WireBytes() != 0 {
		t.Fatal("zero-count PutVectors sent something")
	}
}

func TestPutVectorsMatchesIndividualPuts(t *testing.T) {
	// The aggregate fast path must account exactly like N individual puts
	// when vecBytes == MaxPayload.
	_, rtA := testRuntime(2)
	rtA.PE(0).PutVectors(rtA.PE(1), 100, 256)
	_, rtB := testRuntime(2)
	for i := 0; i < 100; i++ {
		rtB.PE(0).PutBytes(rtB.PE(1), 256)
	}
	a, b := rtA.PE(0), rtB.PE(0)
	if a.Puts() != b.Puts() || a.PayloadBytes() != b.PayloadBytes() || a.WireBytes() != b.WireBytes() {
		t.Fatalf("aggregate path diverges: (%d,%v,%v) vs (%d,%v,%v)",
			a.Puts(), a.PayloadBytes(), a.WireBytes(), b.Puts(), b.PayloadBytes(), b.WireBytes())
	}
	// Drain horizon identical up to float accumulation order (the
	// individual path sums 100 increments; the aggregate divides once).
	dh := rtA.Fabric().Pipe(0, 1).BusyUntil() - rtB.Fabric().Pipe(0, 1).BusyUntil()
	if math.Abs(dh) > 1e-15 {
		t.Fatalf("drain horizons differ between aggregate and individual puts by %v", dh)
	}
}

func TestFabricAccessor(t *testing.T) {
	_, rt := testRuntime(3)
	if rt.Fabric().NumGPUs() != 3 {
		t.Fatal("Fabric accessor broken")
	}
}
