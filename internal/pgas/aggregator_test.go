package pgas

import (
	"testing"

	"pgasemb/internal/sim"
)

func TestAggregatorBuffersUntilThreshold(t *testing.T) {
	_, rt := testRuntime(2)
	a := NewAggregator(rt.PE(0), 1024, sim.Second) // long maxWait: size-triggered only
	src := make([]float32, 64)                     // 256 B per store
	dst := make([]float32, 64)
	for i := 0; i < 3; i++ {
		a.Store(rt.PE(1), dst, src)
	}
	if a.Flushes() != 0 {
		t.Fatalf("flushed early: %d", a.Flushes())
	}
	if a.PendingBytes() != 768 {
		t.Fatalf("pending = %d", a.PendingBytes())
	}
	a.Store(rt.PE(1), dst, src) // 1024 B -> flush
	if a.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1", a.Flushes())
	}
	if a.PendingBytes() != 0 {
		t.Fatalf("pending after flush = %d", a.PendingBytes())
	}
}

func TestAggregatorSingleHeaderPerFlush(t *testing.T) {
	_, rt := testRuntime(2)
	pe := rt.PE(0)
	a := NewAggregator(pe, 1024, sim.Second)
	src := make([]float32, 64)
	dst := make([]float32, 64)
	for i := 0; i < 4; i++ {
		a.Store(rt.PE(1), dst, src)
	}
	// 1024 B payload + one 32 B header, versus 4 x (256+32) unaggregated.
	if pe.WireBytes() != 1024+32 {
		t.Fatalf("wire bytes = %v, want 1056", pe.WireBytes())
	}
	if pe.Puts() != 1 {
		t.Fatalf("puts = %d, want 1 aggregated message", pe.Puts())
	}
}

func TestAggregatorMaxWaitFlush(t *testing.T) {
	env, rt := testRuntime(2)
	a := NewAggregator(rt.PE(0), 1<<20, 5*sim.Millisecond)
	src := make([]float32, 64)
	dst := make([]float32, 64)
	env.Go("worker", func(p *sim.Proc) {
		a.Store(rt.PE(1), dst, src)
		p.Wait(20 * sim.Millisecond)
	})
	env.Run()
	if a.Flushes() != 1 {
		t.Fatalf("maxWait flush did not happen: flushes=%d", a.Flushes())
	}
	if a.PendingBytes() != 0 {
		t.Fatalf("pending after timer flush = %d", a.PendingBytes())
	}
}

func TestAggregatorTimerDoesNotDoubleFlush(t *testing.T) {
	env, rt := testRuntime(2)
	a := NewAggregator(rt.PE(0), 512, 5*sim.Millisecond)
	src := make([]float32, 64)
	dst := make([]float32, 64)
	env.Go("worker", func(p *sim.Proc) {
		a.Store(rt.PE(1), dst, src)
		a.Store(rt.PE(1), dst, src) // 512 B -> size flush at t=0
		p.Wait(20 * sim.Millisecond)
	})
	env.Run()
	if a.Flushes() != 1 {
		t.Fatalf("stale timer refired: flushes=%d", a.Flushes())
	}
}

func TestAggregatorFunctionalCopyImmediate(t *testing.T) {
	_, rt := testRuntime(2)
	a := NewAggregator(rt.PE(0), 1<<20, sim.Second)
	dst := make([]float32, 2)
	a.Store(rt.PE(1), dst, []float32{7, 8})
	if dst[0] != 7 || dst[1] != 8 {
		t.Fatal("aggregated store did not copy functionally")
	}
}

func TestAggregatorLocalStoresBypass(t *testing.T) {
	_, rt := testRuntime(2)
	pe := rt.PE(0)
	a := NewAggregator(pe, 256, sim.Second)
	dst := make([]float32, 64)
	a.Store(pe, dst, make([]float32, 64))
	if a.PendingBytes() != 0 || a.Flushes() != 0 || pe.Puts() != 0 {
		t.Fatal("local store went through the aggregator")
	}
}

func TestAggregatorFlushAll(t *testing.T) {
	_, rt := testRuntime(3)
	pe := rt.PE(0)
	a := NewAggregator(pe, 1<<20, sim.Second)
	dst := make([]float32, 64)
	a.Store(rt.PE(1), dst, make([]float32, 64))
	a.Store(rt.PE(2), dst, make([]float32, 64))
	a.FlushAll()
	if a.PendingBytes() != 0 {
		t.Fatalf("pending after FlushAll = %d", a.PendingBytes())
	}
	if a.Flushes() != 2 {
		t.Fatalf("flushes = %d, want one per destination", a.Flushes())
	}
	// FlushAll on empty buckets is a no-op.
	a.FlushAll()
	if a.Flushes() != 2 {
		t.Fatal("empty FlushAll sent messages")
	}
}

func TestAggregatorFewerMessagesSameBytes(t *testing.T) {
	// The aggregator's entire purpose: same payload, fewer headers.
	_, rt := testRuntime(2)
	direct := rt.PE(0)
	src := make([]float32, 64)
	dst := make([]float32, 64)
	for i := 0; i < 100; i++ {
		direct.PutFloat32s(rt.PE(1), dst, src)
	}
	directWire := direct.WireBytes()

	_, rt2 := testRuntime(2)
	agg := NewAggregator(rt2.PE(0), 8192, sim.Second)
	for i := 0; i < 100; i++ {
		agg.Store(rt2.PE(1), dst, src)
	}
	agg.FlushAll()
	aggWire := rt2.PE(0).WireBytes()

	if rt2.PE(0).PayloadBytes() != direct.PayloadBytes() {
		t.Fatal("payload differs between direct and aggregated paths")
	}
	if aggWire >= directWire {
		t.Fatalf("aggregation did not reduce wire bytes: %v vs %v", aggWire, directWire)
	}
}

func TestAggregatorValidation(t *testing.T) {
	_, rt := testRuntime(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("flushBytes=0 did not panic")
			}
		}()
		NewAggregator(rt.PE(0), 0, sim.Second)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative maxWait did not panic")
			}
		}()
		NewAggregator(rt.PE(0), 1, -1)
	}()
	a := NewAggregator(rt.PE(0), 1024, sim.Second)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		a.Store(rt.PE(1), make([]float32, 1), make([]float32, 2))
	}()
}
