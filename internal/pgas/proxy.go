package pgas

import (
	"fmt"

	"pgasemb/internal/fabric"
	"pgasemb/internal/sim"
)

// ProxyConfig tunes the per-PE inter-node proxy of a cluster runtime.
//
// Real NVSHMEM cannot issue device stores across nodes: remote-node transfers
// are delegated to a CPU proxy thread that drains a staging buffer onto the
// NIC (the IBRC transport). The simulated proxy mirrors that boundary —
// same-node stores keep the direct NVLink path, while stores to remote-node
// PEs accumulate in a per-destination-node staging buffer that is flushed as
// one coalesced NIC message when it reaches StagingBytes of payload, when
// DrainInterval has elapsed since it became non-empty, or at Quiet.
type ProxyConfig struct {
	// StagingBytes is the per-destination-node staging-buffer size: a
	// buffer reaching this many pending payload bytes flushes immediately.
	StagingBytes int

	// DrainInterval bounds how long pending bytes may sit in a staging
	// buffer before being flushed anyway. Zero disables the timer (buffers
	// then flush only on the size threshold and at Quiet).
	DrainInterval sim.Duration
}

// DefaultProxyConfig returns the proxy tuning used by the multi-node
// experiments: 64 KiB staging buffers drained at least every 20 us.
func DefaultProxyConfig() ProxyConfig {
	return ProxyConfig{StagingBytes: 64 << 10, DrainInterval: 20 * sim.Microsecond}
}

// Validate reports whether the configuration is usable.
func (c ProxyConfig) Validate() error {
	switch {
	case c.StagingBytes <= 0:
		return fmt.Errorf("pgas: proxy StagingBytes must be positive, got %d", c.StagingBytes)
	case c.DrainInterval < 0:
		return fmt.Errorf("pgas: proxy DrainInterval must be non-negative, got %g", c.DrainInterval)
	}
	return nil
}

// proxy is one PE's inter-node forwarding engine on the sim clock.
type proxy struct {
	pe  *PE
	net *fabric.Interconnect
	cfg ProxyConfig

	bufs         []proxyBuf // one staging buffer per destination node
	lastDelivery sim.Time
	flushes      int64
}

type proxyBuf struct {
	pending    int
	timerArmed bool
	timerFn    func() // cached drain-timer closure: staging never allocates
}

func newProxy(pe *PE, net *fabric.Interconnect, cfg ProxyConfig) *proxy {
	px := &proxy{pe: pe, net: net, cfg: cfg, bufs: make([]proxyBuf, net.Cluster().Nodes)}
	for node := range px.bufs {
		node := node
		px.bufs[node].timerFn = func() {
			b := &px.bufs[node]
			b.timerArmed = false
			if b.pending > 0 {
				px.flush(node)
			}
		}
	}
	return px
}

// stage queues payload bytes destined for a remote node. The caller has
// already accounted the put; the proxy only decides when the bytes hit the
// NIC. Returns the current time — delivery is asynchronous, observed via
// Quiet.
func (px *proxy) stage(dstNode, payload int) sim.Time {
	now := px.pe.rt.env.Now()
	if payload <= 0 {
		return now
	}
	b := &px.bufs[dstNode]
	if b.pending == 0 && px.cfg.DrainInterval > 0 && !b.timerArmed {
		b.timerArmed = true
		px.pe.rt.env.After(px.cfg.DrainInterval, b.timerFn)
	}
	b.pending += payload
	if b.pending >= px.cfg.StagingBytes {
		px.flush(dstNode)
	}
	return now
}

// flush hands the pending bucket for dstNode to the NIC as one coalesced
// send (fragmented per NICParams.MaxMessage, one header per fragment). When
// fault hooks are installed a lost delivery is retransmitted after the retry
// timeout (exponential backoff per attempt, re-occupying the wire each
// time); Quiet observes the final delivery through lastDelivery, so the
// completion semantics hold under loss.
func (px *proxy) flush(dstNode int) {
	b := &px.bufs[dstNode]
	payload := b.pending
	b.pending = 0
	if payload == 0 {
		return
	}
	seq := px.flushes
	issued := px.pe.rt.env.Now()
	delivered := px.net.SendAt(issued, px.pe.id, dstNode, payload)
	px.pe.wireBytes += px.net.NIC().WireBytes(payload)
	px.pe.counter.Add(issued, delivered, float64(payload))
	if h := px.pe.rt.hooks; h != nil && h.Drop != nil {
		timeout := h.RetryTimeout
		for attempt := 0; h.Drop(px.pe.id, dstNode, seq, attempt); attempt++ {
			px.pe.drops++
			if attempt+1 >= h.maxAttempts() {
				px.pe.exhausted++
				break
			}
			retryAt := delivered + timeout
			delivered = px.net.SendAt(retryAt, px.pe.id, dstNode, payload)
			px.pe.wireBytes += px.net.NIC().WireBytes(payload)
			px.pe.counter.Add(retryAt, delivered, float64(payload))
			px.pe.retries++
			timeout *= h.backoff()
		}
	}
	if delivered > px.lastDelivery {
		px.lastDelivery = delivered
	}
	px.flushes++
}

// drain force-flushes every staging buffer — the proxy half of Quiet.
func (px *proxy) drain() {
	for node := range px.bufs {
		px.flush(node)
	}
}

// reset clears staging state and counters between measurement repetitions.
// A stale drain timer firing on an emptied bucket is a no-op.
func (px *proxy) reset() {
	for i := range px.bufs {
		px.bufs[i].pending = 0
	}
	px.lastDelivery = 0
	px.flushes = 0
}
