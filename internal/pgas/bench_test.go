package pgas

import (
	"testing"

	"pgasemb/internal/sim"
)

func BenchmarkPutFloat32s(b *testing.B) {
	_, rt := testRuntime(2)
	src := make([]float32, 64)
	dst := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.PE(0).PutFloat32s(rt.PE(1), dst, src)
	}
	b.SetBytes(256)
}

func BenchmarkPutVectors(b *testing.B) {
	_, rt := testRuntime(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.PE(0).PutVectors(rt.PE(1), 1024, 256)
	}
	b.SetBytes(1024 * 256)
}

func BenchmarkAtomicAdd(b *testing.B) {
	_, rt := testRuntime(2)
	src := make([]float32, 64)
	dst := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.PE(0).AtomicAddFloat32s(rt.PE(1), dst, src)
	}
	b.SetBytes(256)
}

func BenchmarkAggregatorStore(b *testing.B) {
	_, rt := testRuntime(2)
	a := NewAggregator(rt.PE(0), 64<<10, sim.Second)
	src := make([]float32, 64)
	dst := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Store(rt.PE(1), dst, src)
	}
	b.SetBytes(256)
}
