package pgas

import (
	"testing"

	"pgasemb/internal/sim"
)

// The double-buffered symmetric heap: ConfigureSlots slices each PE's
// staging region into pipeline slots, SetSlot tags subsequent stores, and
// QuietSlot waits only for the tagged slot's store horizon — the property
// that lets a pipelined schedule quiesce slot k while slot k+1's stores are
// still in flight.

func TestQuietSlotWaitsOnlyForItsSlot(t *testing.T) {
	env, rt := testRuntime(2)
	rt.ConfigureSlots(2)
	pe, dst := rt.PE(0), rt.PE(1)
	if pe.Slots() != 2 {
		t.Fatalf("Slots() = %d, want 2", pe.Slots())
	}
	env.Go("pe0", func(p *sim.Proc) {
		pe.SetSlot(0)
		t0 := pe.PutVectors(dst, 4, 256)
		pe.SetSlot(1)
		t1 := pe.PutVectors(dst, 64, 256)
		if t1 <= t0 {
			t.Errorf("second put delivered at %v, want after %v (shared wire)", t1, t0)
		}
		// Slot 0's horizon is t0; the wire is busy until t1, but QuietSlot
		// must not wait for slot 1's store.
		pe.QuietSlot(p, 0)
		if p.Now() != t0 {
			t.Errorf("QuietSlot(0) returned at %v, want slot-0 horizon %v (full horizon is %v)",
				p.Now(), t0, t1)
		}
		// A retired slot costs nothing to quiesce again.
		before := p.Now()
		pe.QuietSlot(p, 0)
		if p.Now() != before {
			t.Errorf("re-quiescing a retired slot advanced time to %v", p.Now())
		}
		pe.QuietSlot(p, 1)
		if p.Now() != t1 {
			t.Errorf("QuietSlot(1) returned at %v, want %v", p.Now(), t1)
		}
	})
	env.Run()
}

func TestQuietSlotMatchesQuietOnUnslicedHeap(t *testing.T) {
	// No ConfigureSlots: any slot argument degrades to a full Quiet. Run the
	// same scenario through both entry points and demand identical times.
	runOne := func(slotVariant bool) sim.Time {
		env, rt := testRuntime(2)
		pe, dst := rt.PE(0), rt.PE(1)
		var at sim.Time
		env.Go("pe0", func(p *sim.Proc) {
			pe.PutVectors(dst, 16, 256)
			if slotVariant {
				pe.QuietSlot(p, 7)
			} else {
				pe.Quiet(p)
			}
			at = p.Now()
		})
		env.Run()
		return at
	}
	slot, quiet := runOne(true), runOne(false)
	if quiet == 0 {
		t.Fatal("Quiet after a remote put did not advance time")
	}
	if slot != quiet {
		t.Errorf("unsliced QuietSlot returned at %v, Quiet at %v — must be identical", slot, quiet)
	}
}

func TestSetSlotIsNoOpOnUnslicedHeap(t *testing.T) {
	_, rt := testRuntime(2)
	rt.PE(0).SetSlot(3) // must not panic: 1-deep pipelines never slice the heap
	if got := rt.PE(0).Slots(); got != 1 {
		t.Fatalf("Slots() = %d, want 1", got)
	}
}

func TestSetSlotPanicsOutOfRange(t *testing.T) {
	_, rt := testRuntime(2)
	rt.ConfigureSlots(2)
	defer func() {
		if recover() == nil {
			t.Error("SetSlot(2) on a 2-slot heap did not panic")
		}
	}()
	rt.PE(0).SetSlot(2)
}

func TestConfigureSlotsPanicsBelowTwo(t *testing.T) {
	_, rt := testRuntime(2)
	defer func() {
		if recover() == nil {
			t.Error("ConfigureSlots(1) did not panic")
		}
	}()
	rt.ConfigureSlots(1)
}

func TestResetCountersClearsSlotMarks(t *testing.T) {
	env, rt := testRuntime(2)
	rt.ConfigureSlots(2)
	pe, dst := rt.PE(0), rt.PE(1)
	env.Go("pe0", func(p *sim.Proc) {
		pe.SetSlot(1)
		pe.PutVectors(dst, 16, 256)
		rt.ResetCounters()
		pe.QuietSlot(p, 1)
		if p.Now() != 0 {
			t.Errorf("QuietSlot after ResetCounters waited until %v, want 0", p.Now())
		}
	})
	env.Run()
}
