package pgas

import (
	"fmt"

	"pgasemb/internal/sim"
)

// Aggregator implements the asynchronous communication aggregator from the
// paper's future-work section (after Chen et al., SC '22): instead of each
// one-sided store paying its own message header, stores to the same
// destination PE accumulate in a per-destination buffer that is flushed as a
// single message when it reaches FlushBytes of payload or has waited
// MaxWait since its first pending store. The paper proposes exactly this as
// the drop-in change — aggregator.store(dst, value, pe) instead of
// sum.store(dst, pe) — to make the PGAS scheme viable on lower-bandwidth,
// higher-latency inter-node links.
type Aggregator struct {
	pe         *PE
	flushBytes int
	maxWait    sim.Duration

	pending []aggBucket // one per destination PE
	flushes int64
}

type aggBucket struct {
	payload    int
	oldestAt   sim.Time
	timerArmed bool
	gen        int // invalidates stale timers after a flush
}

// NewAggregator returns an aggregator for stores issued by pe. flushBytes is
// the payload size that triggers an immediate flush; maxWait bounds how long
// a pending byte may wait before being flushed anyway.
func NewAggregator(pe *PE, flushBytes int, maxWait sim.Duration) *Aggregator {
	if flushBytes <= 0 {
		panic(fmt.Sprintf("pgas: aggregator flushBytes must be positive, got %d", flushBytes))
	}
	if maxWait < 0 {
		panic(fmt.Sprintf("pgas: aggregator maxWait must be non-negative, got %g", maxWait))
	}
	return &Aggregator{
		pe:         pe,
		flushBytes: flushBytes,
		maxWait:    maxWait,
		pending:    make([]aggBucket, pe.rt.NumPEs()),
	}
}

// Store issues an aggregated one-sided store of src into dst on target. The
// functional copy is immediate; the wire message is deferred until the
// destination bucket flushes. Local stores bypass aggregation entirely.
func (a *Aggregator) Store(target *PE, dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("pgas: aggregated store length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
	if target.id == a.pe.id {
		return
	}
	b := &a.pending[target.id]
	if b.payload == 0 {
		b.oldestAt = a.pe.rt.env.Now()
		a.armTimer(target.id)
	}
	b.payload += 4 * len(src)
	if b.payload >= a.flushBytes {
		a.flush(target.id)
	}
}

// StoreBytes is the timing-only aggregated store: payload bytes destined
// for target accumulate in its bucket like Store's, with no functional
// copy. Used by paper-scale simulations of the aggregated-PGAS variant.
func (a *Aggregator) StoreBytes(target *PE, payload int) {
	if payload < 0 {
		panic(fmt.Sprintf("pgas: aggregated StoreBytes(%d)", payload))
	}
	if payload == 0 || target.id == a.pe.id {
		return
	}
	b := &a.pending[target.id]
	if b.payload == 0 {
		b.oldestAt = a.pe.rt.env.Now()
		a.armTimer(target.id)
	}
	b.payload += payload
	if b.payload >= a.flushBytes {
		a.flush(target.id)
	}
}

func (a *Aggregator) armTimer(dst int) {
	b := &a.pending[dst]
	b.timerArmed = true
	gen := b.gen
	a.pe.rt.env.After(a.maxWait, func() {
		bb := &a.pending[dst]
		if bb.gen == gen && bb.payload > 0 {
			a.flush(dst)
		}
	})
}

// flush sends the pending bucket for dst as one message (one header).
func (a *Aggregator) flush(dst int) {
	b := &a.pending[dst]
	payload := b.payload
	b.payload = 0
	b.timerArmed = false
	b.gen++
	if payload == 0 {
		return
	}
	target := a.pe.rt.PE(dst)
	if dn := a.pe.remoteNode(target); dn >= 0 {
		// Cross-node buckets hand their whole payload to the NIC proxy in
		// one piece; the proxy decides the NIC message boundaries.
		a.pe.puts++
		a.pe.payloadBytes += float64(payload)
		a.pe.proxy.stage(dn, payload)
		a.flushes++
		return
	}
	// One header regardless of payload size: the aggregator's entire win.
	wire := float64(payload + a.pe.rt.fabric.Params().HeaderBytes)
	pipe := a.pe.rt.fabric.Pipe(a.pe.id, target.id)
	issued := a.pe.rt.env.Now()
	delivered := pipe.Offer(wire)
	a.pe.puts++
	a.pe.payloadBytes += float64(payload)
	a.pe.wireBytes += wire
	a.pe.counter.Add(issued, delivered, float64(payload))
	a.flushes++
}

// FlushAll forces out every pending bucket — called before Quiet at the end
// of a kernel so no bytes are stranded.
func (a *Aggregator) FlushAll() {
	for dst := range a.pending {
		a.flush(dst)
	}
}

// Flushes returns how many wire messages the aggregator has sent.
func (a *Aggregator) Flushes() int64 { return a.flushes }

// PendingBytes returns the total payload currently buffered.
func (a *Aggregator) PendingBytes() int {
	var sum int
	for i := range a.pending {
		sum += a.pending[i].payload
	}
	return sum
}
