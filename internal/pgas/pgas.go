// Package pgas implements the PGAS-style one-sided communication runtime the
// paper builds its fused embedding-retrieval backend on: NVSHMEM-like
// remote stores ("RDMA writes issued by CUDA threads"), remote atomics (for
// the backward-pass extension), quiet/barrier completion semantics, per-PE
// communication counters (the instrumentation behind Figures 7 and 10), and
// the asynchronous aggregator sketched in the paper's future-work section.
//
// Each GPU is a processing element (PE). A remote store is functionally a
// memcpy into the destination PE's memory — performed immediately, since the
// simulation is deterministic and single-threaded — while its *timing* is a
// message on the per-direction NVLink pipe: payload plus per-fragment header
// drains at link bandwidth, concurrently with whatever compute the issuing
// kernel continues to do. Quiet blocks until all of a PE's outstanding
// stores have drained, exactly the semantics the fused kernel relies on
// before the EMB layer is declared complete.
package pgas

import (
	"fmt"

	"pgasemb/internal/fabric"
	"pgasemb/internal/nvlink"
	"pgasemb/internal/sim"
	"pgasemb/internal/trace"
)

// Runtime is the communication context shared by all PEs on one machine (or,
// for cluster runtimes, across all nodes of one cluster).
type Runtime struct {
	env    *sim.Env
	fabric *nvlink.Fabric
	net    *fabric.Interconnect // nil on single-node runtimes
	pes    []*PE
	hooks  *FaultHooks // nil = perfect delivery

	// Vector codec for reduced wire precision: functional stores whose
	// payload is whole codecDim-element embedding rows are accounted at
	// codecBytes per row instead of 4·codecDim. Zero codecDim = no codec.
	codecDim   int
	codecBytes int
}

// SetVectorCodec installs a wire codec: PutFloat32s payloads made of whole
// dim-element embedding rows are charged encBytes per row on the wire (and
// through the inter-node proxy) instead of the raw 4·dim. Timing-only
// callers pass their encoded vector size to PutVectors directly; atomics and
// gets (the backward gradient paths) stay fp32. dim <= 0 clears the codec.
func (rt *Runtime) SetVectorCodec(dim, encBytes int) {
	if dim <= 0 {
		rt.codecDim, rt.codecBytes = 0, 0
		return
	}
	rt.codecDim, rt.codecBytes = dim, encBytes
}

// putPayload returns the wire payload of a functional store of n float32
// elements under the installed codec (fp32 when no codec is installed or the
// store is not whole rows). Integer per-row arithmetic, so functional
// payloads equal the timing mode's vector-count × encoded-bytes exactly.
func (rt *Runtime) putPayload(n int) int {
	if rt.codecDim > 0 && n%rt.codecDim == 0 {
		return n / rt.codecDim * rt.codecBytes
	}
	return 4 * n
}

// FaultHooks injects delivery faults into a cluster runtime's proxy layer.
// One-sided stores have no acknowledgement visible to the issuing kernel, so
// the quiet/flush boundary is exactly where loss must be detected and
// retried (as the NVSHMEM system analyses observe): a dropped coalesced NIC
// message is retransmitted after a timeout, with exponential backoff, and
// Quiet only returns once the retransmission has landed.
type FaultHooks struct {
	// Drop reports whether the seq-th coalesced flush from PE pe to dstNode
	// is lost on the given (0-based) delivery attempt. It must be a pure
	// function of its arguments so same-seed runs replay identically.
	Drop func(pe, dstNode int, seq int64, attempt int) bool

	// RetryTimeout is how long after the expected delivery time the proxy
	// waits before retransmitting a lost message.
	RetryTimeout sim.Duration

	// RetryBackoff multiplies the timeout after every failed attempt.
	// Values below 1 are treated as 1 (constant timeout).
	RetryBackoff float64

	// MaxAttempts caps total delivery attempts per message; when it is
	// reached the message is declared delivered by the out-of-band recovery
	// path and counted in RetriesExhausted. Non-positive means 16.
	MaxAttempts int
}

func (h *FaultHooks) maxAttempts() int {
	if h.MaxAttempts <= 0 {
		return 16
	}
	return h.MaxAttempts
}

func (h *FaultHooks) backoff() float64 {
	if h.RetryBackoff < 1 {
		return 1
	}
	return h.RetryBackoff
}

// SetFaultHooks installs (or, with nil, removes) delivery-fault injection.
// Hooks only affect inter-node proxy traffic; intra-node NVLink stores are
// load/store operations with hardware-level delivery.
func (rt *Runtime) SetFaultHooks(h *FaultHooks) {
	if h != nil && h.Drop != nil && h.RetryTimeout <= 0 {
		panic(fmt.Sprintf("pgas: fault hooks with non-positive RetryTimeout %g", h.RetryTimeout))
	}
	rt.hooks = h
}

// New creates a runtime with one PE per fabric endpoint.
func New(env *sim.Env, fabric *nvlink.Fabric) *Runtime {
	rt := &Runtime{env: env, fabric: fabric}
	n := fabric.NumGPUs()
	rt.pes = make([]*PE, n)
	for i := 0; i < n; i++ {
		rt.pes[i] = &PE{rt: rt, id: i, counter: &trace.VolumeTrace{}}
	}
	return rt
}

// NewCluster creates a runtime spanning a multi-node cluster: PEs reach
// same-node peers through direct device stores on the NVLink fabric exactly
// as New's, while stores to remote-node PEs are routed through a per-PE
// proxy that coalesces them into NIC messages on net (the NVSHMEM
// proxy/IBRC boundary). fab must be wired over net's Cluster topology.
func NewCluster(env *sim.Env, fab *nvlink.Fabric, net *fabric.Interconnect, cfg ProxyConfig) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if fab.NumGPUs() != net.Cluster().NumGPUs() {
		panic(fmt.Sprintf("pgas: NVLink fabric has %d GPUs but the cluster %d",
			fab.NumGPUs(), net.Cluster().NumGPUs()))
	}
	rt := New(env, fab)
	rt.net = net
	for _, pe := range rt.pes {
		pe.proxy = newProxy(pe, net, cfg)
	}
	return rt
}

// NumPEs returns the number of processing elements.
func (rt *Runtime) NumPEs() int { return len(rt.pes) }

// PE returns processing element i.
func (rt *Runtime) PE(i int) *PE {
	if i < 0 || i >= len(rt.pes) {
		panic(fmt.Sprintf("pgas: PE %d out of range (n=%d)", i, len(rt.pes)))
	}
	return rt.pes[i]
}

// Fabric returns the underlying interconnect.
func (rt *Runtime) Fabric() *nvlink.Fabric { return rt.fabric }

// Interconnect returns the inter-node NIC layer of a cluster runtime, or nil
// for single-node runtimes.
func (rt *Runtime) Interconnect() *fabric.Interconnect { return rt.net }

// NewBarrier returns a barrier across all PEs (each PE's process calls
// Await once per round).
func (rt *Runtime) NewBarrier() *sim.Barrier {
	return sim.NewBarrier(rt.env, len(rt.pes))
}

// ResetCounters clears every PE's communication counter.
func (rt *Runtime) ResetCounters() {
	for _, pe := range rt.pes {
		pe.counter = &trace.VolumeTrace{}
		pe.puts = 0
		pe.payloadBytes = 0
		pe.wireBytes = 0
		pe.drops = 0
		pe.retries = 0
		pe.exhausted = 0
		for i := range pe.slotMarks {
			pe.slotMarks[i] = 0
		}
		pe.curSlot = 0
		if pe.proxy != nil {
			pe.proxy.reset()
		}
	}
}

// TotalTrace merges all PE counters into one volume trace — the machine-wide
// communication-volume-over-time curve of Figures 7 and 10.
func (rt *Runtime) TotalTrace() *trace.VolumeTrace {
	merged := &trace.VolumeTrace{}
	for _, pe := range rt.pes {
		for _, iv := range pe.counter.Intervals() {
			merged.Add(iv.Start, iv.End, iv.Bytes)
		}
	}
	return merged
}

// ConfigureSlots splits every PE's symmetric-heap staging region into n
// pipeline slots (n >= 2; double buffering is n == 2). Each slot tracks its
// own outstanding-store horizon, so QuietSlot can retire one slot's stores
// while a later slot's are still being issued — the completion structure
// inter-batch software pipelining needs. Call once, before any traffic.
func (rt *Runtime) ConfigureSlots(n int) {
	if n < 2 {
		panic(fmt.Sprintf("pgas: ConfigureSlots(%d): need at least 2 slots (1 is the unsliced heap)", n))
	}
	for _, pe := range rt.pes {
		pe.slotMarks = make([]sim.Time, n)
		pe.curSlot = 0
	}
}

// PE is one processing element (GPU) of the partitioned global address
// space.
type PE struct {
	rt    *Runtime
	id    int
	proxy *proxy // inter-node forwarding engine; nil on single-node runtimes

	// slotMarks[k] is slot k's outstanding-store horizon: the latest delivery
	// time of any store issued while slot k was active. Nil when the heap is
	// unsliced (no pipelining); see ConfigureSlots.
	slotMarks []sim.Time
	curSlot   int

	puts         int64
	payloadBytes float64
	wireBytes    float64
	drops        int64 // delivery attempts lost to injected faults
	retries      int64 // retransmissions issued by the proxy
	exhausted    int64 // messages that hit MaxAttempts
	counter      *trace.VolumeTrace
}

// ID returns the PE ordinal.
func (pe *PE) ID() int { return pe.id }

// Puts returns the number of one-sided stores issued by this PE.
func (pe *PE) Puts() int64 { return pe.puts }

// PayloadBytes returns the cumulative payload issued by this PE.
func (pe *PE) PayloadBytes() float64 { return pe.payloadBytes }

// WireBytes returns the cumulative on-the-wire bytes (payload + headers).
func (pe *PE) WireBytes() float64 { return pe.wireBytes }

// Drops returns how many delivery attempts were lost to injected faults.
func (pe *PE) Drops() int64 { return pe.drops }

// Retries returns how many retransmissions this PE's proxy issued.
func (pe *PE) Retries() int64 { return pe.retries }

// RetriesExhausted returns how many messages hit the attempt cap and were
// recovered out of band.
func (pe *PE) RetriesExhausted() int64 { return pe.exhausted }

// Counter returns this PE's communication-volume trace.
func (pe *PE) Counter() *trace.VolumeTrace { return pe.counter }

// Slots returns the number of staging slots the heap is sliced into (1 when
// unsliced).
func (pe *PE) Slots() int {
	if pe.slotMarks == nil {
		return 1
	}
	return len(pe.slotMarks)
}

// SetSlot selects the staging slot subsequent stores are issued against.
// No-op on an unsliced heap.
func (pe *PE) SetSlot(slot int) {
	if pe.slotMarks == nil {
		return
	}
	if slot < 0 || slot >= len(pe.slotMarks) {
		panic(fmt.Sprintf("pgas: SetSlot(%d) out of range (%d slots)", slot, len(pe.slotMarks)))
	}
	pe.curSlot = slot
}

// markDelivery folds a store's delivery time into the active slot's horizon.
func (pe *PE) markDelivery(at sim.Time) sim.Time {
	if pe.slotMarks != nil && at > pe.slotMarks[pe.curSlot] {
		pe.slotMarks[pe.curSlot] = at
	}
	return at
}

// PutFloat32s issues a one-sided store of src into dst, which lives on
// target's memory (dst must be sized to len(src)). The copy happens
// immediately — functional state is always current — while the wire time is
// queued on the src→target pipe. It returns the simulated delivery time.
// Local "stores" (target == pe) are plain writes that never touch the
// fabric; the caller's kernel cost model already accounts for them.
func (pe *PE) PutFloat32s(target *PE, dst, src []float32) sim.Time {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("pgas: put length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
	if target.id == pe.id {
		return pe.rt.env.Now()
	}
	return pe.accountPut(target, pe.rt.putPayload(len(src)))
}

// PutBytes issues a timing-only one-sided store of payload bytes to target.
// Used by cost-level experiments that do not carry functional data.
func (pe *PE) PutBytes(target *PE, payload int) sim.Time {
	if payload < 0 {
		panic(fmt.Sprintf("pgas: negative payload %d", payload))
	}
	if target.id == pe.id {
		return pe.rt.env.Now()
	}
	return pe.accountPut(target, payload)
}

// PutVectors accounts count one-sided stores of vecBytes payload each to
// target, offered to the pipe as one aggregate (identical wire bytes, issue
// counts and drain time as count individual PutBytes calls when vecBytes ==
// MaxPayload — which holds for the paper's d=64 vectors). This is the fast
// path the paper-scale timing simulations use: one call per (chunk,
// destination) instead of one per output vector.
func (pe *PE) PutVectors(target *PE, count, vecBytes int) sim.Time {
	if count < 0 || vecBytes < 0 {
		panic(fmt.Sprintf("pgas: PutVectors(count=%d, vecBytes=%d)", count, vecBytes))
	}
	if count == 0 || target.id == pe.id {
		return pe.rt.env.Now()
	}
	if dn := pe.remoteNode(target); dn >= 0 {
		// Per-vector staging: the proxy sees the same store sequence as
		// count individual puts, so its coalescing boundaries (and hence
		// NIC timing) are identical in timing-only and functional modes.
		pe.puts += int64(count)
		pe.payloadBytes += float64(count) * float64(vecBytes)
		last := pe.rt.env.Now()
		for i := 0; i < count; i++ {
			last = pe.proxy.stage(dn, vecBytes)
		}
		return pe.markDelivery(last)
	}
	wire := float64(count) * pe.rt.fabric.WireBytes(vecBytes)
	pipe := pe.rt.fabric.Pipe(pe.id, target.id)
	issued := pe.rt.env.Now()
	delivered := pipe.Offer(wire)
	payload := float64(count) * float64(vecBytes)
	pe.puts += int64(count)
	pe.payloadBytes += payload
	pe.wireBytes += wire
	pe.counter.Add(issued, delivered, payload)
	return pe.markDelivery(delivered)
}

// AtomicAddFloat32s issues a one-sided accumulate: src is added element-wise
// into dst on target. Remote atomics ride the same wire as stores (NVLink
// atomics are posted operations); the addition itself is applied
// immediately for functional purposes.
func (pe *PE) AtomicAddFloat32s(target *PE, dst, src []float32) sim.Time {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("pgas: atomic add length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range src {
		dst[i] += src[i]
	}
	if target.id == pe.id {
		return pe.rt.env.Now()
	}
	return pe.accountPut(target, 4*len(src))
}

// GetFloat32s issues a one-sided fetch of src (on target) into dst (local).
// The wire cost is charged on the target→pe direction.
func (pe *PE) GetFloat32s(target *PE, dst, src []float32) sim.Time {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("pgas: get length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
	if target.id == pe.id {
		return pe.rt.env.Now()
	}
	return target.accountPut(pe, 4*len(src))
}

// remoteNode returns the destination node index when target lives on a
// different node of a cluster runtime, and -1 for same-node (or
// single-node-runtime) targets.
func (pe *PE) remoteNode(target *PE) int {
	if pe.proxy == nil {
		return -1
	}
	cl := pe.proxy.net.Cluster()
	if dn := cl.Node(target.id); dn != cl.Node(pe.id) {
		return dn
	}
	return -1
}

func (pe *PE) accountPut(target *PE, payload int) sim.Time {
	if dn := pe.remoteNode(target); dn >= 0 {
		pe.puts++
		pe.payloadBytes += float64(payload)
		return pe.markDelivery(pe.proxy.stage(dn, payload))
	}
	wire := pe.rt.fabric.WireBytes(payload)
	pipe := pe.rt.fabric.Pipe(pe.id, target.id)
	issued := pe.rt.env.Now()
	delivered := pipe.Offer(wire)
	pe.puts++
	pe.payloadBytes += float64(payload)
	pe.wireBytes += wire
	pe.counter.Add(issued, delivered, float64(payload))
	return pe.markDelivery(delivered)
}

// Quiet blocks the calling process until every store this PE has issued so
// far has drained onto the wire — nvshmem_quiet semantics, the completion
// point at the end of the paper's fused kernel.
func (pe *PE) Quiet(p *sim.Proc) {
	var worst sim.Time
	if pe.proxy != nil {
		pe.proxy.drain()
		worst = pe.proxy.lastDelivery
	}
	for dst := 0; dst < pe.rt.NumPEs(); dst++ {
		if dst == pe.id {
			continue
		}
		if pe.rt.fabric.Topology().Links(pe.id, dst) <= 0 {
			continue
		}
		if b := pe.rt.fabric.Pipe(pe.id, dst).BusyUntil(); b > worst {
			worst = b
		}
	}
	p.WaitUntil(worst)
}

// QuietSlot blocks the calling process until every store issued against the
// given staging slot has drained, then retires the slot for reuse. Unlike
// Quiet — which waits on the whole outgoing-pipe horizon — QuietSlot only
// needs the slot's own store horizon (plus the proxy's coalescing flush on
// cluster runtimes), which is what lets a pipelined schedule quiesce slot k
// while slot k+1's stores are still in flight. On an unsliced heap it
// degrades to Quiet.
func (pe *PE) QuietSlot(p *sim.Proc, slot int) {
	if pe.slotMarks == nil {
		pe.Quiet(p)
		return
	}
	if slot < 0 || slot >= len(pe.slotMarks) {
		panic(fmt.Sprintf("pgas: QuietSlot(%d) out of range (%d slots)", slot, len(pe.slotMarks)))
	}
	worst := pe.slotMarks[slot]
	if pe.proxy != nil {
		pe.proxy.drain()
		if pe.proxy.lastDelivery > worst {
			worst = pe.proxy.lastDelivery
		}
	}
	p.WaitUntil(worst)
	pe.slotMarks[slot] = 0 // slot retired: its staging half is reusable
}
