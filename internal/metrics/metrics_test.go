package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomeanKnown(t *testing.T) {
	// Paper Table 1: 2.10, 1.95, 1.87 -> geomean ~1.97.
	g := Geomean([]float64{2.10, 1.95, 1.87})
	if math.Abs(g-1.97) > 0.01 {
		t.Fatalf("geomean of Table 1 speedups = %v, want ~1.97", g)
	}
	// Paper Table 2: 2.95, 2.55, 2.44 -> geomean ~2.63.
	g2 := Geomean([]float64{2.95, 2.55, 2.44})
	if math.Abs(g2-2.64) > 0.02 {
		t.Fatalf("geomean of Table 2 speedups = %v, want ~2.63", g2)
	}
}

func TestGeomeanSingle(t *testing.T) {
	if g := Geomean([]float64{7}); g != 7 {
		t.Fatalf("geomean of singleton = %v", g)
	}
}

func TestGeomeanEmpty(t *testing.T) {
	// Empty input is the documented "no data" value, not a crash: a chaos
	// sweep whose filter matched nothing still renders its table.
	if g := Geomean(nil); g != 0 {
		t.Fatalf("empty geomean = %v, want 0", g)
	}
}

func TestGeomeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive geomean did not panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestPercentileEmpty(t *testing.T) {
	// A degraded serving run that completed zero requests has no tail to
	// report; the documented value is 0.
	if p := Percentile(nil, 99); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
}

func TestGeomeanLEArithmeticMeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // strictly positive
		}
		return Geomean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty mean did not panic")
		}
	}()
	Mean(nil)
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10, 5); s != 2 {
		t.Fatalf("Speedup = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive speedup did not panic")
		}
	}()
	Speedup(0, 5)
}

func TestScalingFactors(t *testing.T) {
	// Weak: runtime doubled -> factor 0.5.
	if f := WeakScalingFactor(10, 20); f != 0.5 {
		t.Fatalf("weak factor = %v", f)
	}
	// Strong: runtime halved -> factor 2 (ideal for 2 GPUs).
	if f := StrongScalingFactor(10, 5); f != 2 {
		t.Fatalf("strong factor = %v", f)
	}
}

func TestRelativeError(t *testing.T) {
	if e := RelativeError(11, 10); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("rel err = %v", e)
	}
	defer func() {
		if recover() == nil {
			t.Error("relative error vs zero did not panic")
		}
	}()
	RelativeError(1, 0)
}

func TestWithinFactor(t *testing.T) {
	if !WithinFactor(1.9, 2.0, 1.3) {
		t.Fatal("1.9 should be within 1.3x of 2.0")
	}
	if WithinFactor(0.9, 2.0, 1.3) {
		t.Fatal("0.9 should not be within 1.3x of 2.0")
	}
	if WithinFactor(-1, 2, 1.3) || WithinFactor(1, -2, 1.3) {
		t.Fatal("non-positive values never match")
	}
	defer func() {
		if recover() == nil {
			t.Error("f < 1 did not panic")
		}
	}()
	WithinFactor(1, 1, 0.5)
}

func TestMonotone(t *testing.T) {
	if !Monotone([]float64{3, 2, 2.05, 1}, -1, 0.1) {
		t.Fatal("near-decreasing within slack rejected")
	}
	if Monotone([]float64{3, 2, 2.5}, -1, 0.1) {
		t.Fatal("clear increase accepted as decreasing")
	}
	if !Monotone([]float64{1, 2, 3}, +1, 0) {
		t.Fatal("increasing rejected")
	}
	if !Monotone(nil, +1, 0) || !Monotone([]float64{5}, -1, 0) {
		t.Fatal("degenerate slices should be monotone")
	}
	defer func() {
		if recover() == nil {
			t.Error("dir=0 did not panic")
		}
	}()
	Monotone([]float64{1}, 0, 0)
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{4, 4, 4, 4}); got != 1 {
		t.Fatalf("balanced loads: got %g, want 1", got)
	}
	if got := Imbalance([]float64{8, 0, 0, 0}); got != 4 {
		t.Fatalf("all load on one of four: got %g, want 4", got)
	}
	if got := Imbalance([]float64{6, 2}); got != 1.5 {
		t.Fatalf("got %g, want 1.5", got)
	}
	if got := Imbalance(nil); got != 0 {
		t.Fatalf("empty slice: got %g, want 0", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero loads: got %g, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative load did not panic")
		}
	}()
	Imbalance([]float64{1, -1})
}
