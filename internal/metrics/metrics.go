// Package metrics computes the summary statistics the paper reports:
// geometric-mean speedups (Tables 1 and 2) and weak/strong scaling factors
// (Figures 5 and 8).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Geomean returns the geometric mean of strictly positive values, or 0 for
// an empty slice (the documented "no data" value — a sweep that filtered
// everything out reports zero instead of crashing the whole experiment). It
// still panics on non-positive input, which indicates a broken experiment,
// not a value to average over.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: geomean of non-positive value %g", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Mean returns the arithmetic mean; it panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: mean of nothing")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Speedup returns baseline/optimized — how many times faster the optimized
// runtime is.
func Speedup(baseline, optimized float64) float64 {
	if baseline <= 0 || optimized <= 0 {
		panic(fmt.Sprintf("metrics: speedup of non-positive runtimes (%g, %g)", baseline, optimized))
	}
	return baseline / optimized
}

// WeakScalingFactor returns singleGPU/runtime for a weak-scaling point:
// 1.0 is perfect (runtime flat as GPUs and problem size grow together),
// below 1.0 means the run slowed down.
func WeakScalingFactor(singleGPU, runtime float64) float64 {
	return Speedup(singleGPU, runtime)
}

// StrongScalingFactor returns singleGPU/runtime for a strong-scaling point:
// the speedup over one GPU at fixed total problem size; ideal is the GPU
// count.
func StrongScalingFactor(singleGPU, runtime float64) float64 {
	return Speedup(singleGPU, runtime)
}

// RelativeError returns |got-want| / |want|.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		panic("metrics: relative error against zero")
	}
	return math.Abs(got-want) / math.Abs(want)
}

// WithinFactor reports whether got is within [want/f, want*f] for f >= 1 —
// the tolerance form used by the calibration shape tests.
func WithinFactor(got, want, f float64) bool {
	if f < 1 {
		panic("metrics: WithinFactor needs f >= 1")
	}
	if want <= 0 || got <= 0 {
		return false
	}
	return got >= want/f && got <= want*f
}

// Imbalance returns max/mean of non-negative loads — the per-owner skew
// measure the placement layer reports: 1.0 is perfectly balanced, GPUs is
// the worst case (all load on one device). An empty or all-zero slice
// returns 0 (the documented "no data" value — a run that served nothing has
// no imbalance to report). It panics on negative loads, which indicate a
// broken counter, not a value to compare.
func Imbalance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range xs {
		if x < 0 {
			panic(fmt.Sprintf("metrics: imbalance of negative load %g", x))
		}
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 < p <= 100) of xs by the
// nearest-rank method on a sorted copy; serving latency tails (p50/p95/p99)
// use it. An empty slice returns 0 (the documented "no data" value — a
// degraded serving run that completed zero requests has no tail to report).
// It panics on a percentile outside (0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %g outside (0, 100]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// CacheCounters aggregates hot-row cache activity: probe outcomes and the
// admission/eviction churn behind them. One Cache owns one counter set;
// Add folds per-GPU sets into a system-wide view.
type CacheCounters struct {
	Hits       int64 // probes that found every row of a pooled lookup resident
	Misses     int64 // probes that fell through to the owning GPU
	Insertions int64 // rows admitted (including those that evicted a victim)
	Evictions  int64 // resident rows displaced by an admission
	// FrozenRejects counts admissions refused while the cache was frozen by
	// the serving layer's stale-cache degradation policy.
	FrozenRejects int64
}

// Accesses returns the total probe count.
func (c CacheCounters) Accesses() int64 { return c.Hits + c.Misses }

// HitRate returns Hits/Accesses, or 0 when the cache was never probed.
func (c CacheCounters) HitRate() float64 {
	if c.Accesses() == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses())
}

// Add returns the element-wise sum of the two counter sets.
func (c CacheCounters) Add(o CacheCounters) CacheCounters {
	return CacheCounters{
		Hits:          c.Hits + o.Hits,
		Misses:        c.Misses + o.Misses,
		Insertions:    c.Insertions + o.Insertions,
		Evictions:     c.Evictions + o.Evictions,
		FrozenRejects: c.FrozenRejects + o.FrozenRejects,
	}
}

// RetryCounters aggregates fault-recovery activity: proxy delivery losses and
// retransmissions on the inter-node fabric, plus the serving layer's
// degradation actions (health-aware shedding and queue-timeout rejects). One
// run owns one counter set; Add folds runs into sweep-level views.
type RetryCounters struct {
	Drops     int64 // proxy deliveries lost to injected faults
	Retries   int64 // retransmissions issued by the proxy retry loop
	Exhausted int64 // messages that hit the attempt cap undelivered
	Shed      int64 // arrivals shed by health-aware load shedding
	Rejected  int64 // queued requests rejected by queue timeout
}

// Add returns the element-wise sum of the two counter sets.
func (c RetryCounters) Add(o RetryCounters) RetryCounters {
	return RetryCounters{
		Drops:     c.Drops + o.Drops,
		Retries:   c.Retries + o.Retries,
		Exhausted: c.Exhausted + o.Exhausted,
		Shed:      c.Shed + o.Shed,
		Rejected:  c.Rejected + o.Rejected,
	}
}

// DedupCounters aggregates batch-level index-deduplication activity on the
// cross-GPU wire paths: how many pooled references and vectors were eligible
// (off-diagonal, cache-miss traffic), how many distinct rows they collapsed
// to, and what actually went over the wire. One System owns one counter set;
// Add folds per-run sets into sweep-level views.
type DedupCounters struct {
	Batches      int64 // batches classified with dedup enabled
	EligibleIdx  int64 // pooled index references on off-diagonal pairs (cache misses only)
	EligibleVecs int64 // dense-scheme output vectors those pairs would ship
	UniqueRows   int64 // distinct (table, row) keys among EligibleIdx
	WireRows     int64 // unique rows actually shipped (pairs where dedup won)
	WireVecs     int64 // dense vectors shipped on pairs where dedup lost
	// WireSavedBytes is the modeled wire traffic avoided: for each pair
	// where dedup won, (dense vectors - unique rows) × vector bytes.
	WireSavedBytes float64
}

// UniqueFraction returns UniqueRows/EligibleIdx — the batch-level dedup
// ratio — or 0 when nothing was eligible.
func (c DedupCounters) UniqueFraction() float64 {
	if c.EligibleIdx == 0 {
		return 0
	}
	return float64(c.UniqueRows) / float64(c.EligibleIdx)
}

// Add returns the element-wise sum of the two counter sets.
func (c DedupCounters) Add(o DedupCounters) DedupCounters {
	return DedupCounters{
		Batches:        c.Batches + o.Batches,
		EligibleIdx:    c.EligibleIdx + o.EligibleIdx,
		EligibleVecs:   c.EligibleVecs + o.EligibleVecs,
		UniqueRows:     c.UniqueRows + o.UniqueRows,
		WireRows:       c.WireRows + o.WireRows,
		WireVecs:       c.WireVecs + o.WireVecs,
		WireSavedBytes: c.WireSavedBytes + o.WireSavedBytes,
	}
}

// Monotone reports whether xs is non-increasing (dir < 0) or non-decreasing
// (dir > 0) within slack tolerance (absolute).
func Monotone(xs []float64, dir int, slack float64) bool {
	if dir == 0 {
		panic("metrics: Monotone needs a direction")
	}
	for i := 1; i < len(xs); i++ {
		d := xs[i] - xs[i-1]
		if dir > 0 && d < -slack {
			return false
		}
		if dir < 0 && d > slack {
			return false
		}
	}
	return true
}
