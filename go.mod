module pgasemb

go 1.22
